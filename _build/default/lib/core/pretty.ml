(** Pretty-printing of System F_J terms, in the style of GHC's Core
    dumps. Haskell programmers "pore over Core dumps" (Sec. 8); so will
    users of this library, so the output is kept close to the paper's
    notation: [join j x = rhs in body], [jump j @phi e tau]. *)

open Syntax

let pp_var_bind ppf (v : var) =
  Fmt.pf ppf "(%a : %a)" Ident.pp v.v_name Types.pp v.v_ty

let pp_var_occ ppf (v : var) = Ident.pp ppf v.v_name

let rec pp_expr prec ppf e =
  match e with
  | Var v -> pp_var_occ ppf v
  | Lit l -> Literal.pp ppf l
  | Con (dc, phis, es) ->
      let doc ppf () =
        Fmt.pf ppf "%a%a%a" Datacon.pp dc
          Fmt.(list ~sep:nop (fun ppf t -> Fmt.pf ppf " @%a" (ty_prec 11) t))
          phis
          Fmt.(list ~sep:nop (fun ppf e -> Fmt.pf ppf " %a" (pp_expr 11) e))
          es
      in
      if prec > 10 && (phis <> [] || es <> []) then Fmt.parens doc ppf ()
      else doc ppf ()
  | Prim (op, es) ->
      let doc ppf () =
        Fmt.pf ppf "%a%a" Primop.pp op
          Fmt.(list ~sep:nop (fun ppf e -> Fmt.pf ppf " %a" (pp_expr 11) e))
          es
      in
      if prec > 10 then Fmt.parens doc ppf () else doc ppf ()
  | App _ | TyApp _ ->
      let head, args = collect_args e in
      let doc ppf () =
        Fmt.pf ppf "%a%a" (pp_expr 11) head
          Fmt.(
            list ~sep:nop (fun ppf -> function
              | `Ty t -> Fmt.pf ppf " @%a" (ty_prec 11) t
              | `Val e -> Fmt.pf ppf " %a" (pp_expr 11) e))
          args
      in
      if prec > 10 then Fmt.parens doc ppf () else doc ppf ()
  | Lam _ | TyLam _ ->
      let binders, body = collect_binders e in
      let doc ppf () =
        Fmt.pf ppf "@[<hov 2>\\%a ->@ %a@]"
          Fmt.(
            list ~sep:sp (fun ppf -> function
              | `Val x -> pp_var_bind ppf x
              | `Ty a -> Fmt.pf ppf "@@%a" Ident.pp a))
          binders (pp_expr 0) body
      in
      if prec > 0 then Fmt.parens doc ppf () else doc ppf ()
  | Let (b, body) ->
      let doc ppf () =
        Fmt.pf ppf "@[<v>@[<hov 2>let %a@]@ in %a@]" pp_bind b (pp_expr 0)
          body
      in
      if prec > 0 then Fmt.parens doc ppf () else doc ppf ()
  | Case (scrut, alts) ->
      let doc ppf () =
        Fmt.pf ppf "@[<v 2>case %a of@ %a@]" (pp_expr 0) scrut
          Fmt.(list ~sep:cut pp_alt)
          alts
      in
      if prec > 0 then Fmt.parens doc ppf () else doc ppf ()
  | Join (jb, body) ->
      let doc ppf () =
        Fmt.pf ppf "@[<v>@[<hov 2>join %a@]@ in %a@]" pp_jbind jb
          (pp_expr 0) body
      in
      if prec > 0 then Fmt.parens doc ppf () else doc ppf ()
  | Jump (j, phis, es, ty) ->
      let doc ppf () =
        Fmt.pf ppf "jump %a%a%a @@[%a]" pp_var_occ j
          Fmt.(list ~sep:nop (fun ppf t -> Fmt.pf ppf " @%a" (ty_prec 11) t))
          phis
          Fmt.(list ~sep:nop (fun ppf e -> Fmt.pf ppf " %a" (pp_expr 11) e))
          es (ty_prec 0) ty
      in
      if prec > 10 then Fmt.parens doc ppf () else doc ppf ()

and ty_prec prec ppf t =
  (* Reuse the precedence-aware type printer. *)
  if prec > 10 then
    match t with
    | Types.Var _ | Types.Con _ -> Types.pp ppf t
    | _ -> Fmt.parens Types.pp ppf t
  else Types.pp ppf t

and pp_bind ppf = function
  | NonRec (x, rhs) ->
      Fmt.pf ppf "@[<hov 2>%a =@ %a@]" pp_var_bind x (pp_expr 0) rhs
  | Strict (x, rhs) ->
      Fmt.pf ppf "@[<hov 2>!%a =@ %a@]" pp_var_bind x (pp_expr 0) rhs
  | Rec pairs ->
      Fmt.pf ppf "rec { @[<v>%a@] }"
        Fmt.(
          list ~sep:(any ";@ ") (fun ppf (x, rhs) ->
              Fmt.pf ppf "@[<hov 2>%a =@ %a@]" pp_var_bind x (pp_expr 0) rhs))
        pairs

and pp_jbind ppf = function
  | JNonRec d -> pp_defn ppf d
  | JRec ds ->
      Fmt.pf ppf "rec { @[<v>%a@] }"
        Fmt.(list ~sep:(any ";@ ") pp_defn)
        ds

and pp_defn ppf (d : join_defn) =
  Fmt.pf ppf "@[<hov 2>%a%a%a =@ %a@]" pp_var_occ d.j_var
    Fmt.(list ~sep:nop (fun ppf a -> Fmt.pf ppf " @@%a" Ident.pp a))
    d.j_tyvars
    Fmt.(list ~sep:nop (fun ppf x -> Fmt.pf ppf " %a" pp_var_bind x))
    d.j_params (pp_expr 0) d.j_rhs

and pp_alt ppf { alt_pat; alt_rhs } =
  Fmt.pf ppf "@[<hov 2>%a ->@ %a@]" pp_pat alt_pat (pp_expr 0) alt_rhs

and pp_pat ppf = function
  | PCon (dc, xs) ->
      Fmt.pf ppf "%a%a" Datacon.pp dc
        Fmt.(list ~sep:nop (fun ppf x -> Fmt.pf ppf " %a" pp_var_occ x))
        xs
  | PLit l -> Literal.pp ppf l
  | PDefault -> Fmt.string ppf "_"

(** Print an expression at top level. *)
let pp ppf e = pp_expr 0 ppf e

let to_string e = Fmt.str "@[<v>%a@]" pp e
