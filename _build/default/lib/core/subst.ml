(** Capture-avoiding substitution over System F_J terms.

    A substitution maps term variables to expressions and type variables
    to types. Every binder encountered is refreshed (given a new unique)
    and recorded in the substitution, so the output never captures: this
    is the "rapier" approach used by GHC's simplifier, simplified by
    cloning unconditionally. A useful corollary is that
    [subst empty e] is a {e freshening} of [e] — an alpha-copy sharing
    no binders with the original — which is exactly what inlining a
    definition at several sites requires. *)

open Syntax

type t = { terms : expr Ident.Map.t; types : Types.t Ident.Map.t }

let empty = { terms = Ident.Map.empty; types = Ident.Map.empty }
let is_empty s = Ident.Map.is_empty s.terms && Ident.Map.is_empty s.types

(** Extend with a term-variable mapping. *)
let add_term x e s = { s with terms = Ident.Map.add x e s.terms }

(** Extend with a type-variable mapping. *)
let add_type a ty s = { s with types = Ident.Map.add a ty s.types }

let of_list ?(types = []) terms =
  let s =
    List.fold_left (fun s (x, e) -> add_term x e s) empty terms
  in
  List.fold_left (fun s (a, t) -> add_type a t s) s types

let subst_ty s ty = Types.subst s.types ty

(* Binder-refreshing helpers. Each returns the refreshed binder and the
   extended substitution. *)

let clone_var s (v : var) =
  let v' = { v_name = Ident.refresh v.v_name; v_ty = subst_ty s v.v_ty } in
  (v', add_term v.v_name (Var v') s)

let clone_tyvar s a =
  let a' = Ident.refresh a in
  (a', add_type a (Types.Var a') s)

let clone_vars s vs =
  let rec go s acc = function
    | [] -> (List.rev acc, s)
    | v :: vs ->
        let v', s = clone_var s v in
        go s (v' :: acc) vs
  in
  go s [] vs

let clone_tyvars s tvs =
  let rec go s acc = function
    | [] -> (List.rev acc, s)
    | a :: tvs ->
        let a', s = clone_tyvar s a in
        go s (a' :: acc) tvs
  in
  go s [] tvs

(** Apply a substitution to an expression. *)
let rec expr (s : t) (e : expr) : expr =
  match e with
  | Var v -> (
      match Ident.Map.find_opt v.v_name s.terms with
      | Some e' -> e'
      | None -> Var { v with v_ty = subst_ty s v.v_ty })
  | Lit _ -> e
  | Con (dc, phis, es) ->
      Con (dc, List.map (subst_ty s) phis, List.map (expr s) es)
  | Prim (op, es) -> Prim (op, List.map (expr s) es)
  | App (f, a) -> App (expr s f, expr s a)
  | TyApp (f, phi) -> TyApp (expr s f, subst_ty s phi)
  | Lam (x, b) ->
      let x', s' = clone_var s x in
      Lam (x', expr s' b)
  | TyLam (a, b) ->
      let a', s' = clone_tyvar s a in
      TyLam (a', expr s' b)
  | Let (NonRec (x, rhs), body) ->
      let rhs = expr s rhs in
      let x', s' = clone_var s x in
      Let (NonRec (x', rhs), expr s' body)
  | Let (Strict (x, rhs), body) ->
      let rhs = expr s rhs in
      let x', s' = clone_var s x in
      Let (Strict (x', rhs), expr s' body)
  | Let (Rec pairs, body) ->
      let xs = List.map fst pairs in
      let xs', s' = clone_vars s xs in
      let pairs' =
        List.map2 (fun x' (_, rhs) -> (x', expr s' rhs)) xs' pairs
      in
      Let (Rec pairs', expr s' body)
  | Case (scrut, alts) -> Case (expr s scrut, List.map (alt s) alts)
  | Join (JNonRec d, body) ->
      let d_rhs_s = s in
      let d' = defn d_rhs_s d in
      let jv', s' = clone_var s d.j_var in
      Join (JNonRec { d' with j_var = jv' }, expr s' body)
  | Join (JRec ds, body) ->
      let jvs = List.map (fun d -> d.j_var) ds in
      let jvs', s' = clone_vars s jvs in
      let ds' =
        List.map2 (fun jv' d -> { (defn s' d) with j_var = jv' }) jvs' ds
      in
      Join (JRec ds', expr s' body)
  | Jump (j, phis, es, ty) ->
      let j' =
        match Ident.Map.find_opt j.v_name s.terms with
        | Some (Var v) -> v
        | Some _ ->
            invalid_arg
              "Subst.expr: label substituted by a non-variable expression"
        | None -> { j with v_ty = subst_ty s j.v_ty }
      in
      Jump (j', List.map (subst_ty s) phis, List.map (expr s) es, subst_ty s ty)

and alt s { alt_pat; alt_rhs } =
  match alt_pat with
  | PCon (dc, xs) ->
      let xs', s' = clone_vars s xs in
      { alt_pat = PCon (dc, xs'); alt_rhs = expr s' alt_rhs }
  | PLit _ | PDefault -> { alt_pat; alt_rhs = expr s alt_rhs }

and defn s (d : join_defn) =
  let tvs', s' = clone_tyvars s d.j_tyvars in
  let ps', s' = clone_vars s' d.j_params in
  { d with j_tyvars = tvs'; j_params = ps'; j_rhs = expr s' d.j_rhs }

(** Alpha-copy: refresh every binder in [e]. The result shares no
    binder uniques with [e]. *)
let freshen e = expr empty e

(** [beta_reduce x arg body] = [body{arg/x}] with capture avoidance. *)
let beta_reduce (x : var) (arg : expr) body =
  expr (add_term x.v_name arg empty) body

(** [ty_beta_reduce a phi body] = [body{phi/a}]. *)
let ty_beta_reduce a phi body = expr (add_type a phi empty) body
