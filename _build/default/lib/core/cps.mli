(** A call-by-value CPS transform over the monomorphic, join-free
    fragment — the Sec. 8 foil. The output is ordinary F_J (Lint
    checks it), so the same optimisers can be compared on both styles:
    the tests show CSE and rewrite RULES that succeed in direct style
    and fail after CPS, exactly as the paper argues. *)

exception Unsupported of string

(** CPS-transform a type with answer type [r]:
    arrows become double-barrelled. *)
val cps_ty : r:Types.t -> Types.t -> Types.t

(** CPS-transform a whole program; the result is applied to the
    identity continuation, so it has the same type and value as the
    input. Raises {!Unsupported} on polymorphism, join points
    (erase first) or strict bindings. *)
val transform : Syntax.expr -> Syntax.expr

(** Count syntactic lambdas (the administrative blow-up measure). *)
val count_lams : Syntax.expr -> int
