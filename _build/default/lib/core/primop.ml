(** Primitive operations over literals.

    Primops are saturated (the elaborator eta-expands partial uses) and
    strict in all arguments. Comparison operators return the [Bool]
    datatype (constructors [True]/[False]), which are nullary and hence
    allocation-free at runtime. *)

type t =
  | Add  (** [Int -> Int -> Int] *)
  | Sub  (** [Int -> Int -> Int] *)
  | Mul  (** [Int -> Int -> Int] *)
  | Div  (** [Int -> Int -> Int]; truncating; divide-by-zero is stuck. *)
  | Mod  (** [Int -> Int -> Int] *)
  | Neg  (** [Int -> Int] *)
  | Eq  (** [Int -> Int -> Bool] *)
  | Ne  (** [Int -> Int -> Bool] *)
  | Lt  (** [Int -> Int -> Bool] *)
  | Le  (** [Int -> Int -> Bool] *)
  | Gt  (** [Int -> Int -> Bool] *)
  | Ge  (** [Int -> Int -> Bool] *)
  | CharEq  (** [Char -> Char -> Bool] *)
  | Ord  (** [Char -> Int] *)
  | Chr  (** [Int -> Char] *)
  | StrLen  (** [String -> Int] *)
  | StrIdx  (** [String -> Int -> Char]; out of bounds is stuck. *)

let all =
  [
    Add; Sub; Mul; Div; Mod; Neg; Eq; Ne; Lt; Le; Gt; Ge; CharEq; Ord; Chr;
    StrLen; StrIdx;
  ]

(** Argument types and result type. *)
let signature = function
  | Add | Sub | Mul | Div | Mod -> ([ Types.int; Types.int ], Types.int)
  | Neg -> ([ Types.int ], Types.int)
  | Eq | Ne | Lt | Le | Gt | Ge -> ([ Types.int; Types.int ], Types.bool)
  | CharEq -> ([ Types.char; Types.char ], Types.bool)
  | Ord -> ([ Types.char ], Types.int)
  | Chr -> ([ Types.int ], Types.char)
  | StrLen -> ([ Types.string ], Types.int)
  | StrIdx -> ([ Types.string; Types.int ], Types.char)

let arity op = List.length (fst (signature op))

let name = function
  | Add -> "+#"
  | Sub -> "-#"
  | Mul -> "*#"
  | Div -> "/#"
  | Mod -> "%#"
  | Neg -> "neg#"
  | Eq -> "==#"
  | Ne -> "/=#"
  | Lt -> "<#"
  | Le -> "<=#"
  | Gt -> ">#"
  | Ge -> ">=#"
  | CharEq -> "eqChar#"
  | Ord -> "ord#"
  | Chr -> "chr#"
  | StrLen -> "strLen#"
  | StrIdx -> "strIdx#"

let equal (a : t) (b : t) = a = b
let pp ppf op = Fmt.string ppf (name op)

(** Constant-fold a saturated application to literal arguments.
    Returns [None] when the operation is stuck (e.g. division by zero)
    or the result is a [Bool] (which is a datatype value, handled by the
    caller via {!fold_bool}). *)
let fold_lit op (args : Literal.t list) : Literal.t option =
  match (op, args) with
  | Add, [ Int a; Int b ] -> Some (Int (a + b))
  | Sub, [ Int a; Int b ] -> Some (Int (a - b))
  | Mul, [ Int a; Int b ] -> Some (Int (a * b))
  | Div, [ Int _; Int 0 ] -> None
  | Div, [ Int a; Int b ] -> Some (Int (a / b))
  | Mod, [ Int _; Int 0 ] -> None
  | Mod, [ Int a; Int b ] -> Some (Int (a mod b))
  | Neg, [ Int a ] -> Some (Int (-a))
  | Ord, [ Char c ] -> Some (Int (Char.code c))
  | Chr, [ Int n ] when n >= 0 && n < 256 -> Some (Char (Char.chr n))
  | StrLen, [ String s ] -> Some (Int (String.length s))
  | StrIdx, [ String s; Int i ] when i >= 0 && i < String.length s ->
      Some (Char s.[i])
  | _ -> None

(** Constant-fold operations with a boolean result. *)
let fold_bool op (args : Literal.t list) : bool option =
  match (op, args) with
  | Eq, [ Int a; Int b ] -> Some (a = b)
  | Ne, [ Int a; Int b ] -> Some (a <> b)
  | Lt, [ Int a; Int b ] -> Some (a < b)
  | Le, [ Int a; Int b ] -> Some (a <= b)
  | Gt, [ Int a; Int b ] -> Some (a > b)
  | Ge, [ Int a; Int b ] -> Some (a >= b)
  | CharEq, [ Char a; Char b ] -> Some (a = b)
  | _ -> None
