(** User rewrite rules (GHC RULES, Sec. 8): first-order matching over
    application spines, with term and type holes. *)

type rule = {
  name : string;
  term_holes : Syntax.var list;
  ty_holes : Ident.t list;
  lhs : Syntax.expr;
  rhs : Syntax.expr;
}

val rule :
  name:string ->
  term_holes:Syntax.var list ->
  ty_holes:Ident.t list ->
  lhs:Syntax.expr ->
  rhs:Syntax.expr ->
  rule

type binding = {
  terms : Syntax.expr Ident.Map.t;
  types : Types.t Ident.Map.t;
}

(** Match a rule against the root of an expression. *)
val match_rule : rule -> Syntax.expr -> binding option

(** Apply the first matching rule at the root. *)
val apply_at : rule list -> Syntax.expr -> (string * Syntax.expr) option

(** One bottom-up pass; returns the rewritten term and the names of the
    rules fired (in order). *)
val rewrite : rule list -> Syntax.expr -> Syntax.expr * string list
