(** Erasure of join points: the executable content of Theorem 5
    (Sec. 6).

    For any well-typed F_J term there is an equivalent System F term.
    The construction follows the paper exactly:

    + rewrite to {e commuting-normal form} by iterating [commute] and
      [abort] — push every evaluation frame through the tail contexts
      beneath it, so that afterwards {e every jump is a tail call} of
      its binding (Lemma 4);
    + apply [contify] right-to-left (de-contification, {!Demote}):
      every join binding becomes a [let]-bound function, every jump an
      ordinary saturated call.

    The result contains no [Join]/[Jump] (checked by {!is_join_free})
    and evaluates to the same answer — both properties are exercised by
    the test suite on random well-typed terms. *)

open Syntax

type frame = FApp of expr | FTyApp of Types.t | FCase of alt list

(* Rebuild a stack of frames (innermost first) around a leaf. *)
let unwind_frames frames e =
  List.fold_left
    (fun e f ->
      match f with
      | FApp a -> App (e, a)
      | FTyApp t -> TyApp (e, t)
      | FCase alts -> Case (e, alts))
    e frames

(* Result type of a frame stack given the hole's type. *)
let rec frames_res_ty frames (ty : Types.t) =
  match frames with
  | [] -> ty
  | FApp _ :: rest -> (
      match ty with
      | Types.Arrow (_, r) -> frames_res_ty rest r
      | _ -> raise (Ill_typed "Erase: application of non-function"))
  | FTyApp t :: rest -> (
      match ty with
      | Types.Forall (a, body) -> frames_res_ty rest (Types.subst1 a t body)
      | _ -> raise (Ill_typed "Erase: instantiation of non-forall"))
  | FCase alts :: rest -> (
      match alts with
      | a :: _ -> frames_res_ty rest (ty_of a.alt_rhs)
      | [] -> raise (Ill_typed "Erase: empty case"))

(* Fresh copy of a frame (frames are duplicated into several tail
   holes; each copy must have fresh binders). *)
let fresh_frame = function
  | FApp a -> FApp (Subst.freshen a)
  | FTyApp t -> FTyApp t
  | FCase alts ->
      let dummy = mk_var "ef" (Types.bottom ()) in
      (match Subst.freshen (Case (Var dummy, alts)) with
      | Case (_, alts') -> FCase alts'
      | _ -> assert false)

(* [norm frames e]: normalise [e] under the pending evaluation context
   [frames] (innermost first), pushing the context through tail
   contexts ([commute]) and discarding it at jumps ([abort]). The
   result contains the context. *)
let rec norm (frames : frame list) (e : expr) : expr =
  match e with
  | Var _ | Lit _ -> unwind_frames frames e
  | Con (dc, phis, es) ->
      unwind_frames frames (Con (dc, phis, List.map (norm []) es))
  | Prim (op, es) -> unwind_frames frames (Prim (op, List.map (norm []) es))
  | Lam (x, b) -> unwind_frames frames (Lam (x, norm [] b))
  | TyLam (a, b) -> unwind_frames frames (TyLam (a, norm [] b))
  | App (f, a) -> norm (FApp (norm [] a) :: frames) f
  | TyApp (f, t) -> norm (FTyApp t :: frames) f
  | Case (scrut, alts) ->
      (* casefloat: the pending context moves into every branch. *)
      let alts' =
        List.map
          (fun alt ->
            { alt with alt_rhs = norm (List.map fresh_frame frames) alt.alt_rhs })
          alts
      in
      (* The scrutinee is then normalised under the (single) case
         frame; the outer [frames] were consumed by the branches. *)
      norm [ FCase alts' ] scrut
  | Let (b, body) ->
      (* float: the context passes the binding. *)
      let b' =
        match b with
        | NonRec (x, rhs) -> NonRec (x, norm [] rhs)
        | Strict (x, rhs) -> Strict (x, norm [] rhs)
        | Rec pairs -> Rec (List.map (fun (x, rhs) -> (x, norm [] rhs)) pairs)
      in
      Let (b', norm frames body)
  | Join (jb, body) ->
      (* jfloat: the context is copied into every right-hand side and
         the body. *)
      let push d =
        { d with j_rhs = norm (List.map fresh_frame frames) d.j_rhs }
      in
      let jb' =
        match jb with
        | JNonRec d -> JNonRec (push d)
        | JRec ds -> JRec (List.map push ds)
      in
      Join (jb', norm frames body)
  | Jump (j, phis, es, ty) ->
      (* abort: discard the context, claim its result type. *)
      let ty' = frames_res_ty frames ty in
      Jump (j, phis, List.map (norm []) es, ty')

(** Rewrite [e] so that every jump is a tail call of its join binding
    (Lemma 4 / commuting-normal form). *)
let commuting_normal_form (e : expr) : expr = norm [] e

(** [erase e]: an equivalent System F term with no join points
    (Theorem 5). *)
let erase (e : expr) : expr =
  e |> commuting_normal_form |> Demote.demote |> Subst.freshen

(** Does the term contain no [Join] or [Jump]? (I.e., is it a System F
    term?) *)
let rec is_join_free = function
  | Var _ | Lit _ -> true
  | Con (_, _, es) | Prim (_, es) -> List.for_all is_join_free es
  | App (f, a) -> is_join_free f && is_join_free a
  | TyApp (f, _) -> is_join_free f
  | Lam (_, b) | TyLam (_, b) -> is_join_free b
  | Let ((NonRec (_, rhs) | Strict (_, rhs)), body) ->
      is_join_free rhs && is_join_free body
  | Let (Rec pairs, body) ->
      List.for_all (fun (_, rhs) -> is_join_free rhs) pairs
      && is_join_free body
  | Case (scrut, alts) ->
      is_join_free scrut
      && List.for_all (fun a -> is_join_free a.alt_rhs) alts
  | Join _ | Jump _ -> false
