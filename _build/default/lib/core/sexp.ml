(** S-expression serialisation of System F_J.

    A production compiler persists its IR — GHC writes interface files
    with unfoldings so that cross-module inlining (which Sec. 2 calls
    "the key that unlocks a cascade of further optimizations") can see
    definitions from other compilation units. This module provides that
    substrate: a complete, round-trippable textual encoding of types,
    terms and datatype environments.

    Uniques are preserved through a round trip, so a reloaded term is
    syntactically identical (not merely alpha-equivalent) — checked by
    the property tests. *)

open Syntax

(* ------------------------------------------------------------------ *)
(* S-expressions                                                       *)
(* ------------------------------------------------------------------ *)

type t = Atom of string | List of t list

let rec pp ppf = function
  | Atom s -> Fmt.string ppf s
  | List xs -> Fmt.pf ppf "@[<hov 1>(%a)@]" Fmt.(list ~sep:sp pp) xs

let to_string s = Fmt.str "%a" pp s

exception Parse_error of string

(* A small reader: atoms are runs of non-delimiter characters; strings
   are quoted with OCaml escapes. *)
let parse_string (src : string) : t =
  let n = String.length src in
  let pos = ref 0 in
  let error fmt = Fmt.kstr (fun m -> raise (Parse_error m)) fmt in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (src.[!pos] = ' ' || src.[!pos] = '\n' || src.[!pos] = '\t'
                  || src.[!pos] = '\r')
    do
      incr pos
    done
  in
  let read_quoted () =
    (* Assumes src.[!pos] = '"'. *)
    let start = !pos in
    incr pos;
    let rec scan () =
      if !pos >= n then error "unterminated string"
      else
        match src.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            pos := !pos + 2;
            scan ()
        | _ ->
            incr pos;
            scan ()
    in
    scan ();
    String.sub src start (!pos - start)
  in
  let rec read () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '(' ->
        incr pos;
        let rec items acc =
          skip_ws ();
          match peek () with
          | Some ')' ->
              incr pos;
              List (List.rev acc)
          | None -> error "unclosed list"
          | _ -> items (read () :: acc)
        in
        items []
    | Some ')' -> error "unexpected ')'"
    | Some '"' -> Atom (read_quoted ())
    | Some _ ->
        let start = !pos in
        while
          !pos < n
          && not
               (List.mem src.[!pos] [ ' '; '\n'; '\t'; '\r'; '('; ')'; '"' ])
        do
          incr pos
        done;
        Atom (String.sub src start (!pos - start))
  in
  let s = read () in
  skip_ws ();
  if !pos <> n then error "trailing input at offset %d" !pos;
  s

(* ------------------------------------------------------------------ *)
(* Writers                                                             *)
(* ------------------------------------------------------------------ *)

let of_ident (i : Ident.t) = Atom (Fmt.str "%s.%d" (Ident.name i) (Ident.id i))

let rec of_ty (t : Types.t) : t =
  match t with
  | Types.Var a -> List [ Atom "tv"; of_ident a ]
  | Types.Con c -> List [ Atom "tc"; Atom c ]
  | Types.App (f, a) -> List [ Atom "tapp"; of_ty f; of_ty a ]
  | Types.Arrow (a, b) -> List [ Atom "->"; of_ty a; of_ty b ]
  | Types.Forall (a, b) -> List [ Atom "forall"; of_ident a; of_ty b ]

let of_var (v : var) : t = List [ of_ident v.v_name; of_ty v.v_ty ]

let of_lit (l : Literal.t) : t =
  match l with
  | Literal.Int n -> List [ Atom "int"; Atom (string_of_int n) ]
  | Literal.Char c -> List [ Atom "char"; Atom (string_of_int (Char.code c)) ]
  | Literal.String s -> List [ Atom "string"; Atom (Fmt.str "%S" s) ]

let rec of_expr (e : expr) : t =
  match e with
  | Var v -> List [ Atom "var"; of_var v ]
  | Lit l -> List [ Atom "lit"; of_lit l ]
  | Con (dc, phis, es) ->
      List
        (Atom "con" :: Atom dc.name
        :: List (List.map of_ty phis)
        :: List.map of_expr es)
  | Prim (op, es) ->
      List (Atom "prim" :: Atom (Primop.name op) :: List.map of_expr es)
  | App (f, a) -> List [ Atom "app"; of_expr f; of_expr a ]
  | TyApp (f, t) -> List [ Atom "tyapp"; of_expr f; of_ty t ]
  | Lam (x, b) -> List [ Atom "lam"; of_var x; of_expr b ]
  | TyLam (a, b) -> List [ Atom "tylam"; of_ident a; of_expr b ]
  | Let (NonRec (x, rhs), body) ->
      List [ Atom "let"; of_var x; of_expr rhs; of_expr body ]
  | Let (Strict (x, rhs), body) ->
      List [ Atom "let!"; of_var x; of_expr rhs; of_expr body ]
  | Let (Rec pairs, body) ->
      List
        [
          Atom "letrec";
          List
            (List.map (fun (x, rhs) -> List [ of_var x; of_expr rhs ]) pairs);
          of_expr body;
        ]
  | Case (scrut, alts) ->
      List (Atom "case" :: of_expr scrut :: List.map of_alt alts)
  | Join (JNonRec d, body) ->
      List [ Atom "join"; of_defn d; of_expr body ]
  | Join (JRec ds, body) ->
      List [ Atom "joinrec"; List (List.map of_defn ds); of_expr body ]
  | Jump (j, phis, es, ty) ->
      List
        (Atom "jump" :: of_var j
        :: List (List.map of_ty phis)
        :: of_ty ty :: List.map of_expr es)

and of_alt { alt_pat; alt_rhs } =
  match alt_pat with
  | PCon (dc, xs) ->
      List
        (Atom "pcon" :: Atom dc.name
        :: List (List.map of_var xs)
        :: [ of_expr alt_rhs ])
  | PLit l -> List [ Atom "plit"; of_lit l; of_expr alt_rhs ]
  | PDefault -> List [ Atom "pdefault"; of_expr alt_rhs ]

and of_defn (d : join_defn) =
  List
    [
      of_var d.j_var;
      List (List.map of_ident d.j_tyvars);
      List (List.map of_var d.j_params);
      of_expr d.j_rhs;
    ]

(* ------------------------------------------------------------------ *)
(* Readers                                                             *)
(* ------------------------------------------------------------------ *)

let error fmt = Fmt.kstr (fun m -> raise (Parse_error m)) fmt

let to_ident = function
  | Atom s -> (
      match String.rindex_opt s '.' with
      | Some i ->
          let name = String.sub s 0 i in
          let id =
            try int_of_string (String.sub s (i + 1) (String.length s - i - 1))
            with _ -> error "bad ident %s" s
          in
          Ident.ensure_above id;
          ({ Ident.name; id } : Ident.t)
      | None -> error "bad ident %s" s)
  | List _ -> error "expected an ident atom"

let rec to_ty (s : t) : Types.t =
  match s with
  | List [ Atom "tv"; a ] -> Types.Var (to_ident a)
  | List [ Atom "tc"; Atom c ] -> Types.Con c
  | List [ Atom "tapp"; f; a ] -> Types.App (to_ty f, to_ty a)
  | List [ Atom "->"; a; b ] -> Types.Arrow (to_ty a, to_ty b)
  | List [ Atom "forall"; a; b ] -> Types.Forall (to_ident a, to_ty b)
  | _ -> error "bad type: %s" (to_string s)

let to_var = function
  | List [ name; ty ] -> { v_name = to_ident name; v_ty = to_ty ty }
  | s -> error "bad variable: %s" (to_string s)

let to_lit = function
  | List [ Atom "int"; Atom n ] -> Literal.Int (int_of_string n)
  | List [ Atom "char"; Atom c ] -> Literal.Char (Char.chr (int_of_string c))
  | List [ Atom "string"; Atom s ] -> Literal.String (Scanf.sscanf s "%S" Fun.id)
  | s -> error "bad literal: %s" (to_string s)

let primop_of_name name =
  match List.find_opt (fun op -> Primop.name op = name) Primop.all with
  | Some op -> op
  | None -> error "unknown primop %s" name

(** Reading constructors needs the datatype environment. *)
let rec to_expr (env : Datacon.env) (s : t) : expr =
  let expr = to_expr env in
  match s with
  | List [ Atom "var"; v ] -> Var (to_var v)
  | List [ Atom "lit"; l ] -> Lit (to_lit l)
  | List (Atom "con" :: Atom name :: List phis :: es) -> (
      match Datacon.find_con env name with
      | Some dc -> Con (dc, List.map to_ty phis, List.map expr es)
      | None -> error "unknown constructor %s" name)
  | List (Atom "prim" :: Atom name :: es) ->
      Prim (primop_of_name name, List.map expr es)
  | List [ Atom "app"; f; a ] -> App (expr f, expr a)
  | List [ Atom "tyapp"; f; t ] -> TyApp (expr f, to_ty t)
  | List [ Atom "lam"; x; b ] -> Lam (to_var x, expr b)
  | List [ Atom "tylam"; a; b ] -> TyLam (to_ident a, expr b)
  | List [ Atom "let"; x; rhs; body ] ->
      Let (NonRec (to_var x, expr rhs), expr body)
  | List [ Atom "let!"; x; rhs; body ] ->
      Let (Strict (to_var x, expr rhs), expr body)
  | List [ Atom "letrec"; List pairs; body ] ->
      Let
        ( Rec
            (List.map
               (function
                 | List [ x; rhs ] -> (to_var x, expr rhs)
                 | s -> error "bad letrec pair: %s" (to_string s))
               pairs),
          expr body )
  | List (Atom "case" :: scrut :: alts) ->
      Case (expr scrut, List.map (to_alt env) alts)
  | List [ Atom "join"; d; body ] -> Join (JNonRec (to_defn env d), expr body)
  | List [ Atom "joinrec"; List ds; body ] ->
      Join (JRec (List.map (to_defn env) ds), expr body)
  | List (Atom "jump" :: j :: List phis :: ty :: es) ->
      Jump (to_var j, List.map to_ty phis, List.map expr es, to_ty ty)
  | _ -> error "bad expression: %s" (to_string s)

and to_alt env = function
  | List [ Atom "pcon"; Atom name; List xs; rhs ] -> (
      match Datacon.find_con env name with
      | Some dc ->
          {
            alt_pat = PCon (dc, List.map to_var xs);
            alt_rhs = to_expr env rhs;
          }
      | None -> error "unknown constructor %s" name)
  | List [ Atom "plit"; l; rhs ] ->
      { alt_pat = PLit (to_lit l); alt_rhs = to_expr env rhs }
  | List [ Atom "pdefault"; rhs ] ->
      { alt_pat = PDefault; alt_rhs = to_expr env rhs }
  | s -> error "bad alternative: %s" (to_string s)

and to_defn env = function
  | List [ jv; List tvs; List ps; rhs ] ->
      {
        j_var = to_var jv;
        j_tyvars = List.map to_ident tvs;
        j_params = List.map to_var ps;
        j_rhs = to_expr env rhs;
      }
  | s -> error "bad join definition: %s" (to_string s)

(* ------------------------------------------------------------------ *)
(* Whole-program convenience                                           *)
(* ------------------------------------------------------------------ *)

(** Serialise an expression to a string. *)
let write (e : expr) : string = to_string (of_expr e)

(** Parse an expression back (constructors resolved in [env]). *)
let read (env : Datacon.env) (src : string) : expr =
  to_expr env (parse_string src)
