(** Common sub-expression elimination — the Sec. 8 direct-style
    argument made concrete. Only work-reducing sharing is performed. *)

type stats = { mutable shared : int }

val stats : stats

(** Run CSE over a whole program. *)
val run : Syntax.expr -> Syntax.expr
