(** Contification: inferring join points from tail-called let bindings
    (Sec. 4, Fig. 5 of the paper). *)

type stats = { mutable contified : int; mutable groups : int }

(** Running counters of contified bindings / recursive groups. *)
val stats : stats

val reset_stats : unit -> unit

(** One bottom-up pass turning every eligible [let] into a [join]:
    every occurrence must be a saturated tail call of consistent shape,
    the right-hand side must supply matching binders, and the stripped
    body must have the scope's type (the Fig. 5 proviso). Idempotent,
    typing- and meaning-preserving. *)
val contify : Syntax.expr -> Syntax.expr
