(** The Core-to-Core pass pipeline.

    Three compiler configurations, matching the experimental contrast
    of Sec. 7 plus one ablation:

    - {b Join_points} — the paper's compiler: Float In, contification
      (run "whenever the occurrence analyzer runs"), and the Simplifier
      with [jfloat]/[abort], iterated; Float Out at the end.
    - {b Baseline} — pre-join-point GHC, the paper's baseline: same
      pipeline but contification off and shared case alternatives bound
      as ordinary lets. (The {e back end} — see {!Fj_machine.Lower} —
      still recognises non-escaping tail-called bindings, as the
      paper's baseline does.)
    - {b No_cc} — commuting conversions disabled entirely; quantifies
      the Sec. 2 claim that they are "tremendously important in
      practice".

    [run] optionally Lints between every pass, which is how the test
    suite "forensically identifies" any pass that destroys typing. *)

open Syntax

type mode = Baseline | Join_points | No_cc

let mode_name = function
  | Baseline -> "baseline"
  | Join_points -> "join-points"
  | No_cc -> "no-commuting-conversions"

type config = {
  mode : mode;
  iterations : int;  (** Rounds of (float-in; contify; simplify). *)
  inline_threshold : int;
  dup_threshold : int;
  strictness : bool;
      (** Run the demand analysis ({!Demand}) each round. Applies under
          every mode — the paper's baseline GHC has strictness analysis
          too; only the join-point-specific parts differ. *)
  cse : bool;  (** Run common sub-expression elimination each round. *)
  rules : Rules.rule list;
      (** User rewrite RULES (Sec. 8), applied once per round before
          the simplifier — like GHC, rules fire interleaved with
          inlining so that library-author equations (e.g.
          stream/unstream) meet their redexes. *)
  spec_constr : bool;
      (** Run call-pattern specialisation ({!Spec_constr}) each round
          (only effective on recursive join points, i.e. under
          [Join_points]). *)
  datacons : Datacon.env;
  lint_every_pass : bool;
      (** Typecheck between passes; raise {!Pass_broke_lint} on
          failure. *)
}

let default_config ?(mode = Join_points) ?(iterations = 3)
    ?(inline_threshold = 60) ?(dup_threshold = 12) ?(strictness = true)
    ?(cse = true) ?(spec_constr = true) ?(rules = [])
    ?(datacons = Datacon.builtins) ?(lint_every_pass = false) () =
  { mode; iterations; inline_threshold; dup_threshold; strictness; cse;
    rules; spec_constr; datacons; lint_every_pass }

exception Pass_broke_lint of string * Lint.error

type report = {
  mutable trail : (string * int) list;  (** (pass, size after), reversed. *)
  mutable contified : int;
}

let fresh_report () = { trail = []; contified = 0 }

let pp_report ppf r =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(
      list ~sep:cut (fun ppf (p, n) -> Fmt.pf ppf "%-28s size %d" p n))
    (List.rev r.trail)

let simplify_config (c : config) : Simplify.config =
  {
    Simplify.join_points = (c.mode = Join_points);
    case_of_case = c.mode <> No_cc;
    inline_threshold = c.inline_threshold;
    dup_threshold = c.dup_threshold;
    datacons = c.datacons;
  }

(** Run the configured pipeline. Returns the optimised term and a
    report of the passes run. *)
let run_report (c : config) (e : expr) : expr * report =
  let report = fresh_report () in
  let check pass e =
    report.trail <- (pass, size e) :: report.trail;
    if c.lint_every_pass then begin
      match Lint.lint_result c.datacons e with
      | Ok _ -> ()
      | Error err -> raise (Pass_broke_lint (pass, err))
    end;
    e
  in
  let scfg = simplify_config c in
  let e = check "input" e in
  let rec rounds i e =
    if i >= c.iterations then e
    else
      let e, _ = Float_in.run e in
      let e = check (Fmt.str "float-in (%d)" i) e in
      let e =
        if c.mode = Join_points then begin
          let before = Contify.stats.contified in
          let e = Contify.contify e in
          report.contified <-
            report.contified + (Contify.stats.contified - before);
          check (Fmt.str "contify (%d)" i) e
        end
        else e
      in
      let e =
        if c.rules = [] then e
        else begin
          let e, fired = Rules.rewrite c.rules e in
          if fired <> [] then
            report.trail <-
              (Fmt.str "rules (%d): %s" i (String.concat "," fired), size e)
              :: report.trail;
          e
        end
      in
      let e =
        if c.spec_constr && c.mode = Join_points then
          check (Fmt.str "spec-constr (%d)" i) (Spec_constr.run e)
        else e
      in
      let e =
        if c.strictness then begin
          let e = Demand.strictify e in
          check (Fmt.str "demand (%d)" i) e
        end
        else e
      in
      let e = Simplify.simplify ~max_iters:6 scfg e in
      let e = check (Fmt.str "simplify (%d)" i) e in
      let e =
        if c.cse then check (Fmt.str "cse (%d)" i) (Cse.run e) else e
      in
      rounds (i + 1) e
  in
  let e = rounds 0 e in
  let e, _ = Float_out.run e in
  let e = check "float-out" e in
  let e = Simplify.simplify ~max_iters:4 scfg e in
  let e = check "simplify (final)" e in
  (e, report)

let run c e = fst (run_report c e)

(** Convenience: optimise under every mode and return the association
    list (used by the benchmark harness). *)
let run_all_modes ?(iterations = 3) ?(datacons = Datacon.builtins) e =
  List.map
    (fun mode ->
      (mode, run (default_config ~mode ~iterations ~datacons ()) e))
    [ Baseline; Join_points; No_cc ]
