(** The equational theory of Fig. 4 as executable single-step rewrites:
    the specification form of the optimiser, used by the metatheory
    tests and by {!Erase}. Each axiom returns [Some e'] when it applies
    at the root. *)

(** One evaluation-context frame [F] of Fig. 1. *)
type frame =
  | FApp of Syntax.expr
  | FTyApp of Types.t
  | FCase of Syntax.alt list

val plug : frame -> Syntax.expr -> Syntax.expr

(** Result type of [plug frame e] given [e : ty]. *)
val frame_result_ty : frame -> Types.t -> Types.t option

(** [(\x. e) v = let x = v in e]. *)
val beta : Syntax.expr -> Syntax.expr option

(** [(/\a. e) phi = e{phi/a}]. *)
val beta_ty : Syntax.expr -> Syntax.expr option

(** Exhaustively inline a non-recursive value binding. *)
val inline : Syntax.expr -> Syntax.expr option

(** Drop a dead (non-strict) binding. *)
val drop : Syntax.expr -> Syntax.expr option

(** Substitute a join definition at its tail jumps; [None] if some
    jump to it is not a tail call. *)
val substitute_jumps :
  defn:Syntax.join_defn -> Syntax.expr -> Syntax.expr option

(** Inline a non-recursive join point at its (tail) jumps. *)
val jinline : Syntax.expr -> Syntax.expr option

(** Drop a dead join binding. *)
val jdrop : Syntax.expr -> Syntax.expr option

(** Case-of-known-constructor (and known literal). *)
val case_of_known : Syntax.expr -> Syntax.expr option

(** [E[case e of alts] = case e of {p -> E[rhs]}]. *)
val casefloat : frame -> Syntax.expr -> Syntax.expr option

(** [E[let b in e] = let b in E[e]]. *)
val float : frame -> Syntax.expr -> Syntax.expr option

(** [E[join jb in e] = join E[jb] in E[e]]. *)
val jfloat : frame -> Syntax.expr -> Syntax.expr option

(** [E[jump j es tau] : tau' = jump j es tau']. *)
val abort : frame -> Syntax.expr -> Syntax.expr option

(** The derived general form: push a frame through a maximal tail
    context, aborting at jumps. Always succeeds. *)
val commute : frame -> Syntax.expr -> Syntax.expr
