(** Core Lint: the internal typechecker for System F_J (Fig. 2).

    The judgement carries two environments: [gamma] for term variables
    and type variables, and [delta] for join points. [delta] is {e
    reset} in every premise whose runtime context is not statically
    known — function arguments, [let] right-hand sides, and lambda
    bodies — which is what keeps jumps from being used as first-class
    effects (Sec. 3). It is propagated into evaluation positions (case
    scrutinees, application heads) and tail positions (case branches,
    let/join bodies, join right-hand sides).

    Like GHC's Core Lint, this checker runs between optimizer passes in
    the test suite and "forensically identifies" passes that destroy
    join points or types (Sec. 7). *)

open Syntax

type error = { message : string; context : expr option }

exception Lint_error of error

let fail ?context fmt =
  Fmt.kstr (fun message -> raise (Lint_error { message; context })) fmt

let pp_error ppf { message; context } =
  match context with
  | None -> Fmt.string ppf message
  | Some e -> Fmt.pf ppf "%s@.  in: %a" message Pretty.pp e

type env = {
  datacons : Datacon.env;
  tyvars : Ident.Set.t;  (** Type variables in scope. *)
  gamma : Types.t Ident.Map.t;  (** Term variables in scope. *)
  delta : (Ident.t list * Types.t list) Ident.Map.t;
      (** Join points in scope: type parameters and argument types. *)
}

let init_env datacons =
  {
    datacons;
    tyvars = Ident.Set.empty;
    gamma = Ident.Map.empty;
    delta = Ident.Map.empty;
  }

(** Reset [delta]: used for premises whose runtime context is unknown. *)
let no_joins env = { env with delta = Ident.Map.empty }

let bind_tyvar a env = { env with tyvars = Ident.Set.add a env.tyvars }
let bind_tyvars tvs env = List.fold_left (fun e a -> bind_tyvar a e) env tvs

let bind_var (v : var) env =
  { env with gamma = Ident.Map.add v.v_name v.v_ty env.gamma }

let bind_vars vs env = List.fold_left (fun e v -> bind_var v e) env vs

let bind_join (d : join_defn) env =
  {
    env with
    delta =
      Ident.Map.add d.j_var.v_name
        (d.j_tyvars, List.map (fun p -> p.v_ty) d.j_params)
        env.delta;
  }

(* ------------------------------------------------------------------ *)
(* Type well-formedness (a simple kind check)                          *)
(* ------------------------------------------------------------------ *)

let rec check_ty env (ty : Types.t) =
  match ty with
  | Types.Var a ->
      if not (Ident.Set.mem a env.tyvars) then
        fail "type variable %a not in scope" Ident.pp a
  | Types.Con c ->
      if not (is_prim_tycon c) && Datacon.find_tycon env.datacons c = None
      then fail "unknown type constructor %s" c;
      (match Datacon.find_tycon env.datacons c with
      | Some tc when tc.tc_tyvars <> [] ->
          fail "type constructor %s is under-applied" c
      | _ -> ())
  | Types.App _ -> (
      let head, args = Types.split_apps ty in
      List.iter (check_ty env) args;
      match head with
      | Types.Con c -> (
          match Datacon.find_tycon env.datacons c with
          | None -> fail "unknown type constructor %s" c
          | Some tc ->
              if List.length tc.tc_tyvars <> List.length args then
                fail "type constructor %s applied to %d arguments, expects %d"
                  c (List.length args)
                  (List.length tc.tc_tyvars))
      | Types.Var a ->
          if not (Ident.Set.mem a env.tyvars) then
            fail "type variable %a not in scope" Ident.pp a
      | _ -> fail "ill-formed type application head")
  | Types.Arrow (s, t) ->
      check_ty env s;
      check_ty env t
  | Types.Forall (a, t) -> check_ty (bind_tyvar a env) t

and is_prim_tycon c =
  match c with "Int" | "Char" | "String" -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Term typing                                                         *)
(* ------------------------------------------------------------------ *)

let rec infer env (e : expr) : Types.t =
  match e with
  | Var v -> (
      match Ident.Map.find_opt v.v_name env.gamma with
      | None ->
          if Ident.Map.mem v.v_name env.delta then
            fail ~context:e "join point %a used as a first-class value"
              Ident.pp v.v_name
          else fail ~context:e "variable %a not in scope" Ident.pp v.v_name
      | Some ty ->
          if not (Types.equal ty v.v_ty) then
            fail ~context:e "variable %a occurrence type %a differs from %a"
              Ident.pp v.v_name Types.pp v.v_ty Types.pp ty;
          ty)
  | Lit l -> Literal.ty l
  | Con (dc, phis, es) ->
      (match Datacon.find_con env.datacons dc.name with
      | None -> fail ~context:e "unknown data constructor %s" dc.name
      | Some _ -> ());
      if List.length phis <> List.length dc.univ then
        fail ~context:e "constructor %s: %d type arguments, expects %d"
          dc.name (List.length phis) (List.length dc.univ);
      List.iter (check_ty env) phis;
      let arg_tys = Datacon.instantiate_args dc phis in
      if List.length es <> List.length arg_tys then
        fail ~context:e "constructor %s: %d arguments, expects %d" dc.name
          (List.length es) (List.length arg_tys);
      List.iter2
        (fun arg want ->
          let got = infer (no_joins env) arg in
          if not (Types.equal got want) then
            fail ~context:e "constructor %s: argument has type %a, wants %a"
              dc.name Types.pp got Types.pp want)
        es arg_tys;
      Types.apps (Types.Con dc.tycon) phis
  | Prim (op, es) ->
      let arg_tys, res = Primop.signature op in
      if List.length es <> List.length arg_tys then
        fail ~context:e "primop %s: arity mismatch" (Primop.name op);
      List.iter2
        (fun arg want ->
          let got = infer (no_joins env) arg in
          if not (Types.equal got want) then
            fail ~context:e "primop %s: argument has type %a, wants %a"
              (Primop.name op) Types.pp got Types.pp want)
        es arg_tys;
      res
  | App (f, a) -> (
      (* Delta flows into the head (evaluation position) but is reset
         in the argument. *)
      match infer env f with
      | Types.Arrow (s, t) ->
          let got = infer (no_joins env) a in
          if not (Types.equal got s) then
            fail ~context:e "argument has type %a, function expects %a"
              Types.pp got Types.pp s;
          t
      | ty -> fail ~context:e "applying non-function of type %a" Types.pp ty)
  | TyApp (f, phi) -> (
      check_ty env phi;
      match infer env f with
      | Types.Forall (a, body) -> Types.subst1 a phi body
      | ty ->
          fail ~context:e "type-applying non-polymorphic type %a" Types.pp ty)
  | Lam (x, b) ->
      check_ty env x.v_ty;
      let t = infer (no_joins (bind_var x env)) b in
      Types.Arrow (x.v_ty, t)
  | TyLam (a, b) ->
      let t = infer (no_joins (bind_tyvar a env)) b in
      Types.Forall (a, t)
  | Let ((NonRec (x, rhs) | Strict (x, rhs)), body) ->
      check_ty env x.v_ty;
      let got = infer (no_joins env) rhs in
      if not (Types.equal got x.v_ty) then
        fail ~context:e "let binder %a : %a but rhs has type %a" Ident.pp
          x.v_name Types.pp x.v_ty Types.pp got;
      infer (bind_var x env) body
  | Let (Rec pairs, body) ->
      let env' = bind_vars (List.map fst pairs) env in
      List.iter
        (fun ((x : var), rhs) ->
          check_ty env x.v_ty;
          let got = infer (no_joins env') rhs in
          if not (Types.equal got x.v_ty) then
            fail ~context:e "letrec binder %a : %a but rhs has type %a"
              Ident.pp x.v_name Types.pp x.v_ty Types.pp got)
        pairs;
      infer env' body
  | Case (scrut, alts) -> check_case env e scrut alts
  | Join (JNonRec d, body) ->
      check_join_var e d;
      let body_ty = infer (bind_join d env) body in
      check_join_rhs env e d body_ty;
      body_ty
  | Join (JRec ds, body) ->
      List.iter (check_join_var e) ds;
      let env' = List.fold_left (fun env d -> bind_join d env) env ds in
      let body_ty = infer env' body in
      List.iter (fun d -> check_join_rhs env' e d body_ty) ds;
      body_ty
  | Jump (j, phis, es, ty) -> (
      check_ty env ty;
      match Ident.Map.find_opt j.v_name env.delta with
      | None ->
          if Ident.Map.mem j.v_name env.gamma then
            fail ~context:e
              "jump to %a, which is a value binding (or a join point whose \
               frame is not in the current evaluation context)"
              Ident.pp j.v_name
          else fail ~context:e "jump to unbound label %a" Ident.pp j.v_name
      | Some (tyvars, arg_tys) ->
          if List.length phis <> List.length tyvars then
            fail ~context:e "jump to %a: %d type arguments, expects %d"
              Ident.pp j.v_name (List.length phis) (List.length tyvars);
          List.iter (check_ty env) phis;
          let inst =
            List.fold_left2
              (fun m a phi -> Ident.Map.add a phi m)
              Ident.Map.empty tyvars phis
          in
          let want_tys = List.map (Types.subst inst) arg_tys in
          if List.length es <> List.length want_tys then
            fail ~context:e "jump to %a: %d arguments, expects %d" Ident.pp
              j.v_name (List.length es) (List.length want_tys);
          List.iter2
            (fun arg want ->
              let got = infer (no_joins env) arg in
              if not (Types.equal got want) then
                fail ~context:e "jump to %a: argument has type %a, wants %a"
                  Ident.pp j.v_name Types.pp got Types.pp want)
            es want_tys;
          ty)

and check_case env e scrut alts =
  let scrut_ty = infer env scrut in
  if alts = [] then fail ~context:e "case with no alternatives";
  let check_alt { alt_pat; alt_rhs } =
    match alt_pat with
    | PDefault -> infer env alt_rhs
    | PLit l ->
        if not (Types.equal (Literal.ty l) scrut_ty) then
          fail ~context:e "literal pattern %a cannot match scrutinee type %a"
            Literal.pp l Types.pp scrut_ty;
        infer env alt_rhs
    | PCon (dc, xs) ->
        let head, phis = Types.split_apps scrut_ty in
        (match head with
        | Types.Con t when String.equal t dc.tycon -> ()
        | _ ->
            fail ~context:e
              "constructor pattern %s cannot match scrutinee type %a" dc.name
              Types.pp scrut_ty);
        let want_tys = Datacon.instantiate_args dc phis in
        if List.length xs <> List.length want_tys then
          fail ~context:e "pattern %s: %d binders, expects %d" dc.name
            (List.length xs) (List.length want_tys);
        List.iter2
          (fun (x : var) want ->
            if not (Types.equal x.v_ty want) then
              fail ~context:e "pattern binder %a : %a, should be %a" Ident.pp
                x.v_name Types.pp x.v_ty Types.pp want)
          xs want_tys;
        infer (bind_vars xs env) alt_rhs
  in
  match List.map check_alt alts with
  | [] -> assert false
  | ty :: rest ->
      List.iter
        (fun ty' ->
          if not (Types.equal ty ty') then
            fail ~context:e "case alternatives have different types %a and %a"
              Types.pp ty Types.pp ty')
        rest;
      ty

(* The binder of a join point must carry the type
   [forall tyvars. arg_tys -> forall r. r]. *)
and check_join_var e (d : join_defn) =
  let want =
    Types.join_point_ty d.j_tyvars (List.map (fun p -> p.v_ty) d.j_params)
  in
  if not (Types.equal d.j_var.v_ty want) then
    fail ~context:e "join binder %a has type %a, should be %a" Ident.pp
      d.j_var.v_name Types.pp d.j_var.v_ty Types.pp want

(* Rule JBIND: the right-hand side is checked in the outer [delta]
   (a join rhs is itself a tail context, so it may jump to outer and —
   in the recursive case — sibling join points) and must produce
   exactly the type of the join body. The body type must not mention
   the join point's own type parameters. *)
and check_join_rhs env e (d : join_defn) body_ty =
  let rhs_env = bind_vars d.j_params (bind_tyvars d.j_tyvars env) in
  List.iter (fun (p : var) -> check_ty rhs_env p.v_ty) d.j_params;
  let got = infer rhs_env d.j_rhs in
  if not (Types.equal got body_ty) then
    fail ~context:e "join point %a rhs has type %a but the body has type %a"
      Ident.pp d.j_var.v_name Types.pp got Types.pp body_ty;
  let escaped =
    List.filter
      (fun a -> Ident.Set.mem a (Types.free_vars body_ty))
      d.j_tyvars
  in
  match escaped with
  | [] -> ()
  | a :: _ ->
      fail ~context:e "join point %a: type parameter %a escapes into %a"
        Ident.pp d.j_var.v_name Ident.pp a Types.pp body_ty

(** [lint datacons e] typechecks closed [e]; returns its type or raises
    {!Lint_error}. *)
let lint datacons e = infer (init_env datacons) e

(** [lint_result datacons e] is {!lint} with errors reified. *)
let lint_result datacons e =
  match lint datacons e with
  | ty -> Ok ty
  | exception Lint_error err -> Error err

(** [well_typed datacons e] is true iff [e] lints. *)
let well_typed datacons e =
  match lint_result datacons e with Ok _ -> true | Error _ -> false
