(** A call-by-value CPS transform — the paper's Sec. 8 foil.

    The paper argues for direct style over continuation-passing style
    with concrete examples: "consider common sub-expression elimination
    (CSE). In [f (g x) (g x)], the common sub-expression is easy to
    see. But it is much harder to find in the CPS version", and rewrite
    RULES "are more difficult to spot" once every application is
    threaded through continuations.

    This module makes that argument executable: a standard (Fischer /
    Plotkin) call-by-value CPS transform over the {e monomorphic,
    join-free} fragment of F_J (exactly what {!Erase} produces for the
    paper's examples), with

    {v [[ tau -> sigma ]] = [[tau]] -> ([[sigma]] -> R) -> R v}

    for a fixed answer type [R]. The output is ordinary F_J (Lint
    checks it), so the {e same} optimisers can be pointed at both
    styles and compared — see the CSE experiment in the tests and in
    [bench/main.exe].

    Continuations for case branches are bound as functions (Kennedy's
    [letcont]) rather than duplicated, which is precisely the
    "join-point as ordinary binding" encoding the paper starts from. *)

open Syntax

exception Unsupported of string

let unsupported fmt = Fmt.kstr (fun m -> raise (Unsupported m)) fmt

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

(** CPS-transform a (monomorphic, first-order-data) type with answer
    type [r]: arrows become double-barrelled; data types are kept as-is
    (their fields must be first-order for this to be faithful — the
    fragment our examples and benches use). *)
let rec cps_ty ~(r : Types.t) (t : Types.t) : Types.t =
  match t with
  | Types.Var _ -> t
  | Types.Con _ -> t
  | Types.App _ -> t
  | Types.Arrow (a, b) ->
      Types.Arrow
        (cps_ty ~r a, Types.Arrow (Types.Arrow (cps_ty ~r b, r), r))
  | Types.Forall _ -> unsupported "polymorphic type in CPS fragment"

(* ------------------------------------------------------------------ *)
(* Terms                                                               *)
(* ------------------------------------------------------------------ *)

(* [cps ~r e k] builds the CPS translation of [e] delivered to the
   (syntactic) continuation builder [k : expr -> expr], which receives
   a *value* (trivial expression). *)
let rec cps ~(r : Types.t) (e : expr) (k : expr -> expr) : expr =
  match e with
  | Var v -> k (Var { v with v_ty = cps_ty ~r v.v_ty })
  | Lit _ -> k e
  | Con (dc, phis, args) ->
      (* Evaluate fields left to right (CBV), then construct. *)
      cps_list ~r args (fun vals -> k (Con (dc, phis, vals)))
  | Prim (op, args) ->
      cps_list ~r args (fun vals ->
          let res_ty = snd (Primop.signature op) in
          let x = mk_var "p" res_ty in
          Let (NonRec (x, Prim (op, vals)), k (Var x)))
  | Lam (x, body) ->
      let x' = { x with v_ty = cps_ty ~r x.v_ty } in
      let body_ty = cps_ty ~r (ty_of_orig body) in
      let kv = mk_var "k" (Types.Arrow (body_ty, r)) in
      k
        (Lam
           ( x',
             Lam (kv, cps ~r body (fun v -> App (Var kv, v))) ))
  | App (f, a) ->
      cps ~r f (fun fv ->
          cps ~r a (fun av ->
              let res_ty = cps_ty ~r (ty_of_orig e) in
              let x = mk_var "v" res_ty in
              App (App (fv, av), Lam (x, k (Var x)))))
  | Let ((NonRec (x, rhs) | Strict (x, rhs)), body) ->
      (* The transform is call-by-value, so strict and lazy bindings
         coincide. *)
      cps ~r rhs (fun v ->
          let x' = { x with v_ty = cps_ty ~r x.v_ty } in
          Let (NonRec (x', v), cps ~r body k))
  | Let (Rec pairs, body) ->
      (* Recursive functions: CPS each lambda in place. *)
      let pairs' =
        List.map
          (fun ((x : var), rhs) ->
            match rhs with
            | Lam _ ->
                let x' = { x with v_ty = cps_ty ~r x.v_ty } in
                (x', cps_value ~r rhs)
            | _ -> unsupported "recursive non-lambda binding in CPS fragment")
          pairs
      in
      Let (Rec pairs', cps ~r body k)
  | Case (scrut, alts) ->
      cps ~r scrut (fun sv ->
          (* Bind the continuation once (Kennedy's letcont) so the
             branches share it — the CPS encoding of a join point. *)
          let res_ty = cps_ty ~r (ty_of_alts alts) in
          let x = mk_var "v" res_ty in
          let kv = mk_var "kont" (Types.Arrow (res_ty, r)) in
          Let
            ( NonRec (kv, Lam (x, k (Var x))),
              Case
                ( sv,
                  List.map
                    (fun { alt_pat; alt_rhs } ->
                      let alt_pat =
                        match alt_pat with
                        | PCon (dc, xs) ->
                            PCon
                              ( dc,
                                List.map
                                  (fun (b : var) ->
                                    { b with v_ty = cps_ty ~r b.v_ty })
                                  xs )
                        | p -> p
                      in
                      {
                        alt_pat;
                        alt_rhs = cps ~r alt_rhs (fun v -> App (Var kv, v));
                      })
                    alts ) ))
  | TyApp _ | TyLam _ -> unsupported "type abstraction in CPS fragment"
  | Join _ | Jump _ ->
      unsupported "join point in CPS input (erase first)"

(* Values in binding position (recursive lambdas). *)
and cps_value ~r (e : expr) : expr =
  match e with
  | Lam (x, body) ->
      let x' = { x with v_ty = cps_ty ~r x.v_ty } in
      let body_ty = cps_ty ~r (ty_of_orig body) in
      let kv = mk_var "k" (Types.Arrow (body_ty, r)) in
      Lam (x', Lam (kv, cps ~r body (fun v -> App (Var kv, v))))
  | _ -> unsupported "expected a lambda value"

and cps_list ~r (es : expr list) (k : expr list -> expr) : expr =
  match es with
  | [] -> k []
  | e :: rest -> cps ~r e (fun v -> cps_list ~r rest (fun vs -> k (v :: vs)))

(* The type of the ORIGINAL (pre-CPS) expression; binders still carry
   source types at this point. *)
and ty_of_orig e = ty_of e

and ty_of_alts = function
  | a :: _ -> ty_of a.alt_rhs
  | [] -> invalid_arg "Cps: empty case"

(** CPS-transform a whole (monomorphic, join-free) program of type
    [ty]: the result takes no continuation — it is applied to the
    identity — and again has type [ty], so it can be evaluated and
    compared directly against the direct-style original. *)
let transform (e : expr) : expr =
  let r = ty_of e in
  (* The answer type is the program's own (base or data) type, so the
     identity continuation closes the computation at the same type as
     the direct-style original. A function-typed program would need an
     abstract answer type (answer-type polymorphism); it is rejected —
     observably it is only ever [<fun>] anyway. *)
  (match r with
  | Types.Arrow _ | Types.Forall _ ->
      unsupported "function-typed program (answer type must be first-order)"
  | _ -> ());
  let x = mk_var "ans" r in
  cps ~r e (fun v -> App (Lam (x, Var x), v))

(** Count syntactic lambda abstractions — the paper's "administrative"
    blow-up of CPS is visible in this number. *)
let rec count_lams = function
  | Lam (_, b) -> 1 + count_lams b
  | TyLam (_, b) -> count_lams b
  | Var _ | Lit _ -> 0
  | Con (_, _, es) | Prim (_, es) ->
      List.fold_left (fun n e -> n + count_lams e) 0 es
  | App (f, a) -> count_lams f + count_lams a
  | TyApp (f, _) -> count_lams f
  | Let (b, body) ->
      List.fold_left (fun n (_, rhs) -> n + count_lams rhs) (count_lams body)
        (bind_pairs b)
  | Case (s, alts) ->
      List.fold_left
        (fun n a -> n + count_lams a.alt_rhs)
        (count_lams s) alts
  | Join (jb, body) ->
      List.fold_left
        (fun n d -> n + count_lams d.j_rhs)
        (count_lams body) (join_defns jb)
  | Jump (_, _, es, _) ->
      List.fold_left (fun n e -> n + count_lams e) 0 es
