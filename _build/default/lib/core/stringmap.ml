(** String-keyed maps, shared across the library. *)

include Map.Make (String)
