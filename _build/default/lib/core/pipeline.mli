(** The Core-to-Core pass pipeline: the three compiler configurations
    of the paper's experiment (join-points, pre-join-point baseline,
    and a no-commuting-conversions ablation). *)

type mode = Baseline | Join_points | No_cc

val mode_name : mode -> string

type config = {
  mode : mode;
  iterations : int;
  inline_threshold : int;
  dup_threshold : int;
  strictness : bool;
  cse : bool;
  rules : Rules.rule list;
  spec_constr : bool;
  datacons : Datacon.env;
  lint_every_pass : bool;
}

val default_config :
  ?mode:mode ->
  ?iterations:int ->
  ?inline_threshold:int ->
  ?dup_threshold:int ->
  ?strictness:bool ->
  ?cse:bool ->
  ?spec_constr:bool ->
  ?rules:Rules.rule list ->
  ?datacons:Datacon.env ->
  ?lint_every_pass:bool ->
  unit ->
  config

(** Raised by {!run_report} when [lint_every_pass] is set and a pass
    breaks typing — the paper's "forensic" use of Core Lint (Sec. 7). *)
exception Pass_broke_lint of string * Lint.error

type report = {
  mutable trail : (string * int) list;  (** (pass name, size after). *)
  mutable contified : int;
}

val pp_report : Format.formatter -> report -> unit

(** Run the configured pipeline; also returns the pass report. *)
val run_report : config -> Syntax.expr -> Syntax.expr * report

val run : config -> Syntax.expr -> Syntax.expr

(** Optimise under every mode (used by the benchmark harness). *)
val run_all_modes :
  ?iterations:int ->
  ?datacons:Datacon.env ->
  Syntax.expr ->
  (mode * Syntax.expr) list
