(** Data constructors and datatype environments: [typeof K] and
    [ctors T] of Fig. 2. *)

type t = {
  name : string;
  tycon : string;
  univ : Ident.t list;
  arg_tys : Types.t list;
  tag : int;
}

type tycon = {
  tc_name : string;
  tc_tyvars : Ident.t list;
  tc_cons : t list;
}

type env

val arity : t -> int

(** Result type [T a1 ... an] at the constructor's own variables. *)
val result_ty : t -> Types.t

(** [typeof K]: the full System F type. *)
val ty : t -> Types.t

(** Field types with the universal variables instantiated. *)
val instantiate_args : t -> Types.t list -> Types.t list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val empty_env : env

exception Duplicate of string

(** Add a datatype declaration (constructor name, field types). *)
val declare :
  env -> name:string -> tyvars:Ident.t list -> (string * Types.t list) list -> env

val find_con : env -> string -> t option
val find_tycon : env -> string -> tycon option

(** [ctors T], in declaration order. *)
val constructors_of : env -> string -> t list

(** Wired-in datatypes: Bool, Unit, Pair, Maybe, Either, List,
    Ordering. *)
val builtins : env

(** Look up a builtin constructor; raises on unknown names. *)
val builtin : string -> t

val true_con : t
val false_con : t
val of_bool : bool -> t
