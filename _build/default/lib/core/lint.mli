(** Core Lint: the Fig. 2 typechecker for System F_J, including the
    join environment Δ and its resets. Run between passes to catch
    transformations that destroy typing or join points (Sec. 7). *)

type error = { message : string; context : Syntax.expr option }

exception Lint_error of error

val pp_error : Format.formatter -> error -> unit

(** Typecheck a closed term; returns its type or raises
    {!Lint_error}. *)
val lint : Datacon.env -> Syntax.expr -> Types.t

val lint_result : Datacon.env -> Syntax.expr -> (Types.t, error) result
val well_typed : Datacon.env -> Syntax.expr -> bool
