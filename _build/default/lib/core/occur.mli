(** Occurrence analysis: counts, under-lambda flags, and the
    tail-call/shape tracking that drives contification (Sec. 4). *)

type call_shape = { n_ty : int; n_val : int }

type info = {
  count : int;
  under_lam : bool;
  all_tail : bool;
  shape : call_shape option;
}

type t = info Ident.Map.t

val no_info : info
val union : t -> t -> t

(** Usage info for the free variables of an expression; [tail] says
    whether the expression itself is in tail position. *)
val analyze : tail:bool -> Syntax.expr -> t

(** Analysis of a complete (tail-position) expression. *)
val of_expr : Syntax.expr -> t

(** Also record the usage of every binder (keyed by unique) — consumed
    by the simplifier. *)
val with_binder_info : Syntax.expr -> t * info Ident.Map.t

val lookup : t -> Syntax.var -> info
val is_dead : t -> Syntax.var -> bool
val occurs_once_safely : t -> Syntax.var -> bool
