(** Types of System F_J (Fig. 1): System F types over algebraic
    datatypes. Join points receive [forall a. sigmas -> forall r. r];
    the trailing [forall r. r] (⊥) marks a non-returning computation. *)

type t =
  | Var of Ident.t
  | Con of string
  | App of t * t
  | Arrow of t * t
  | Forall of Ident.t * t

val var : Ident.t -> t
val con : string -> t

(** Left-associated type application. *)
val apps : t -> t list -> t

(** [arrows sigmas tau] = [sigma_1 -> ... -> tau]. *)
val arrows : t list -> t -> t

val foralls : Ident.t list -> t -> t

val int : t
val char : t
val string : t
val bool : t
val unit : t

(** A fresh ⊥ = [forall r. r]. *)
val bottom : unit -> t

(** Recognises any alpha-variant of ⊥. *)
val is_bottom : t -> bool

val split_foralls : t -> Ident.t list * t
val split_arrows : t -> t list * t
val split_apps : t -> t * t list

(** The type of a join point with the given binders:
    [forall tyvars. arg_tys -> ⊥]. *)
val join_point_ty : Ident.t list -> t list -> t

val free_vars : t -> Ident.Set.t
val occurs : Ident.t -> t -> bool

(** Capture-avoiding simultaneous substitution. *)
val subst : t Ident.Map.t -> t -> t

val subst1 : Ident.t -> t -> t -> t

(** Peel one quantifier per argument. Raises [Invalid_argument] on
    non-foralls. *)
val instantiate : t -> t list -> t

(** Alpha-equivalence. *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
