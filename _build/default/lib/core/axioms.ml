(** The equational theory of Fig. 4, as executable single-step rewrites.

    Each axiom is a partial function [expr -> expr option] returning
    [Some e'] when the axiom applies at the root (reading the figure
    left-to-right), [None] otherwise. The optimizer ({!Simplify}) works
    with a fused, context-passing implementation of the same theory;
    this module is the specification form, used by the metatheory tests
    (soundness of every axiom is checked by evaluation on random
    well-typed terms) and by the erasure procedure of Sec. 6.

    A one-frame evaluation context [E] (Fig. 1) is represented by
    {!frame}; [casefloat]/[float]/[jfloat]/[abort] take the frame as an
    argument. *)

open Syntax

(** One evaluation-context frame [F]: applied function, instantiated
    polymorphism, or case scrutinee. (The fourth form of Fig. 1, a join
    binding, is handled by the axioms themselves.) *)
type frame =
  | FApp of expr  (** [[] v] *)
  | FTyApp of Types.t  (** [[] tau] *)
  | FCase of alt list  (** [case [] of alts] *)

(** Plug an expression into a frame. *)
let plug frame e =
  match frame with
  | FApp arg -> App (e, arg)
  | FTyApp t -> TyApp (e, t)
  | FCase alts -> Case (e, alts)

(** The result type of [plug frame e] given that [e : ty]. *)
let frame_result_ty frame (ty : Types.t) : Types.t option =
  match (frame, ty) with
  | FApp _, Types.Arrow (_, r) -> Some r
  | FTyApp phi, Types.Forall (a, body) -> Some (Types.subst1 a phi body)
  | FCase alts, _ -> (
      match alts with
      | a :: _ -> ( match ty_of a.alt_rhs with t -> Some t | exception _ -> None)
      | [] -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* beta / beta_tau                                                     *)
(* ------------------------------------------------------------------ *)

(** [(\x:sigma. e) v = let x:sigma = v in e]. *)
let beta = function
  | App (Lam (x, body), arg) -> Some (Let (NonRec (x, arg), body))
  | _ -> None

(** [(/\a. e) phi = e{phi/a}]. *)
let beta_ty = function
  | TyApp (TyLam (a, body), phi) -> Some (Subst.ty_beta_reduce a phi body)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* inline / drop                                                       *)
(* ------------------------------------------------------------------ *)

(** [let vb in C\[x\] = let vb in C\[v\]] for [(x = v) in vb] with [v] a
    value: exhaustively inline a non-recursive value binding into the
    body. Applies only when the right-hand side is a WHNF or trivial
    (the paper's [inline] is restricted to values [v]). *)
let inline = function
  | Let (NonRec (x, rhs), body)
    when (is_whnf rhs || is_trivial rhs) && occurs x.v_name body ->
      (* Freshen per occurrence via the substitution's cloning. *)
      Some (Let (NonRec (x, rhs), Subst.beta_reduce x (Subst.freshen rhs) body))
  | _ -> None

(** [let vb in e = e] when nothing bound by [vb] occurs free in [e]. *)
let drop = function
  | Let (b, body)
    when List.for_all
           (fun (x : var) -> not (occurs x.v_name body))
           (binders_of_bind b)
         && (match b with
            | NonRec _ -> true
            | Strict _ ->
                (* A dead strict binding may still diverge; dropping it
                   is unsound in general. *)
                false
            | Rec pairs ->
                (* For recursive groups the binders must also be dead in
                   the right-hand sides, or dropping changes nothing
                   anyway since they are unreachable; we simply require
                   deadness in the body, as the axiom does. *)
                ignore pairs;
                true) ->
      Some body
  | _ -> None

(* ------------------------------------------------------------------ *)
(* jinline / jdrop                                                     *)
(* ------------------------------------------------------------------ *)

(* Substitute a join definition for tail jumps to it within the tail
   positions of an expression: walks the tail contexts [L] of Fig. 1
   only, replacing [jump j phis es tau] by
   [let xs = es in rhs{phis/as}]. Jumps in non-tail positions are left
   alone (and make the axiom inapplicable if [require_all]). *)
let substitute_jumps ~(defn : join_defn) (e : expr) : expr option =
  let j = defn.j_var in
  let applied = ref true in
  (* [true] iff no non-tail occurrence found. *)
  let rec tail e =
    match e with
    | Jump (j', phis, es, _) when var_equal j j' ->
        if
          List.length phis = List.length defn.j_tyvars
          && List.length es = List.length defn.j_params
        then begin
          (* Freshen the definition (cloning its binders), then
             substitute the type arguments and let-bind the value
             arguments. *)
          let d' = Subst.defn Subst.empty defn in
          let ty_inst =
            List.fold_left2
              (fun m a phi -> Ident.Map.add a phi m)
              Ident.Map.empty d'.j_tyvars phis
          in
          let s =
            Ident.Map.fold
              (fun a phi s -> Subst.add_type a phi s)
              ty_inst Subst.empty
          in
          let body = Subst.expr s d'.j_rhs in
          let xs =
            List.map
              (fun (x : var) -> { x with v_ty = Types.subst ty_inst x.v_ty })
              d'.j_params
          in
          List.fold_right2
            (fun x arg acc -> Let (NonRec (x, arg), acc))
            xs es body
        end
        else begin
          applied := false;
          e
        end
    | Jump (j', phis, es, ty) -> Jump (j', phis, List.map check es, ty)
    | Case (scrut, alts) ->
        Case (check scrut, List.map (fun a -> { a with alt_rhs = tail a.alt_rhs }) alts)
    | Let (b, body) ->
        let b' =
          match b with
          | NonRec (x, rhs) -> NonRec (x, check rhs)
          | Strict (x, rhs) -> Strict (x, check rhs)
          | Rec pairs -> Rec (List.map (fun (x, rhs) -> (x, check rhs)) pairs)
        in
        Let (b', tail body)
    | Join (jb, body) ->
        let jb' =
          match jb with
          | JNonRec d -> JNonRec { d with j_rhs = tail d.j_rhs }
          | JRec ds -> JRec (List.map (fun d -> { d with j_rhs = tail d.j_rhs }) ds)
        in
        Join (jb', tail body)
    | _ -> check e
  (* Non-tail positions: jumps to [j] here block the axiom. *)
  and check e =
    match e with
    | Jump (j', _, _, _) when var_equal j j' ->
        applied := false;
        e
    | Jump (j', phis, es, ty) -> Jump (j', phis, List.map check es, ty)
    | Var _ | Lit _ -> e
    | Con (dc, phis, es) -> Con (dc, phis, List.map check es)
    | Prim (op, es) -> Prim (op, List.map check es)
    | App (f, a) -> App (check f, check a)
    | TyApp (f, t) -> TyApp (check f, t)
    | Lam (x, b) -> Lam (x, check b)
    | TyLam (a, b) -> TyLam (a, check b)
    | Let (NonRec (x, rhs), body) -> Let (NonRec (x, check rhs), check body)
    | Let (Strict (x, rhs), body) -> Let (Strict (x, check rhs), check body)
    | Let (Rec pairs, body) ->
        Let (Rec (List.map (fun (x, rhs) -> (x, check rhs)) pairs), check body)
    | Case (scrut, alts) ->
        Case (check scrut, List.map (fun a -> { a with alt_rhs = check a.alt_rhs }) alts)
    | Join (jb, body) ->
        let jb' =
          match jb with
          | JNonRec d -> JNonRec { d with j_rhs = check d.j_rhs }
          | JRec ds -> JRec (List.map (fun d -> { d with j_rhs = check d.j_rhs }) ds)
        in
        Join (jb', check body)
  in
  let e' = tail e in
  if !applied then Some e' else None

(** [jinline]: exhaustively inline a non-recursive join point at its
    tail jumps. Fails (returns [None]) if some jump to it is not in
    tail position — the side condition enforced by the tail context [L]
    in Fig. 4. *)
let jinline = function
  | Join (JNonRec d, body) -> (
      match substitute_jumps ~defn:d body with
      | Some body' -> Some (Join (JNonRec d, body'))
      | None -> None)
  | _ -> None

(** [join jb in e = e] when no label bound by [jb] occurs in [e]. *)
let jdrop = function
  | Join (jb, body)
    when List.for_all
           (fun (j : var) -> not (occurs j.v_name body))
           (binders_of_jbind jb) ->
      Some body
  | _ -> None

(* ------------------------------------------------------------------ *)
(* case                                                                *)
(* ------------------------------------------------------------------ *)

(** [case K phis vs of ... K xs -> e ... = let xs = vs in e], the
    case-of-known-constructor rule (plus its literal analogue). *)
let case_of_known = function
  | Case (Con (dc, _, args), alts) -> (
      let pick { alt_pat; _ } =
        match alt_pat with PCon (d, _) -> Datacon.equal d dc | _ -> false
      in
      match
        ( List.find_opt pick alts,
          List.find_opt (fun a -> a.alt_pat = PDefault) alts )
      with
      | Some { alt_pat = PCon (_, xs); alt_rhs }, _ ->
          Some
            (List.fold_right2
               (fun x arg acc -> Let (NonRec (x, arg), acc))
               xs args alt_rhs)
      | None, Some { alt_rhs; _ } -> Some alt_rhs
      | _ -> None)
  | Case (Lit l, alts) -> (
      let pick { alt_pat; _ } =
        match alt_pat with PLit l' -> Literal.equal l l' | _ -> false
      in
      match
        ( List.find_opt pick alts,
          List.find_opt (fun a -> a.alt_pat = PDefault) alts )
      with
      | Some { alt_rhs; _ }, _ -> Some alt_rhs
      | None, Some { alt_rhs; _ } -> Some alt_rhs
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The commuting conversions                                           *)
(* ------------------------------------------------------------------ *)

(* Duplicate the frame around [e], freshening the frame's binders (a
   case frame binds pattern variables; an argument may bind internally).
   Used whenever an axiom copies [E] into several holes. *)
let plug_fresh frame e =
  match frame with
  | FCase alts -> (
      let dummy = mk_var "cf" (Types.bottom ()) in
      let template = Case (Var dummy, alts) in
      match Subst.freshen template with
      | Case (_, alts') -> Case (e, alts')
      | _ -> assert false)
  | FApp arg -> App (e, Subst.freshen arg)
  | FTyApp t -> TyApp (e, t)

(** [casefloat]: [E\[case e of alts\] = case e of {p -> E\[rhs\]}].
    The frame is duplicated into every branch (freshened per copy). *)
let casefloat frame = function
  | Case (scrut, alts) ->
      Some
        (Case
           ( scrut,
             List.map
               (fun a -> { a with alt_rhs = plug_fresh frame a.alt_rhs })
               alts ))
  | _ -> None

(** [float]: [E\[let vb in e\] = let vb in E\[e\]]. *)
let float frame = function
  | Let (b, body) -> Some (Let (b, plug frame body))
  | _ -> None

(** [jfloat]: [E\[join jb in e\] = join E\[jb\] in E\[e\]], pushing the
    frame into every join right-hand side and the body (each copy of
    the frame freshened). *)
let jfloat frame = function
  | Join (jb, body) ->
      let push d = { d with j_rhs = plug_fresh frame d.j_rhs } in
      let jb' =
        match jb with
        | JNonRec d -> JNonRec (push d)
        | JRec ds -> JRec (List.map push ds)
      in
      Some (Join (jb', plug_fresh frame body))
  | _ -> None

(** [abort]: [E\[jump j phis es tau\] : tau' = jump j phis es tau']. *)
let abort frame = function
  | Jump (j, phis, es, ty) ->
      Option.map
        (fun ty' -> Jump (j, phis, es, ty'))
        (frame_result_ty frame ty)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* commute (the derived general form)                                  *)
(* ------------------------------------------------------------------ *)

(** [commute]: [E\[L\[es\]\] = L\[E\[es\]\]] — push a frame through a
    maximal tail context, aborting at jumps. This is the single general
    axiom of which [casefloat], [float] and [jfloat] are instances
    (Sec. 3, "The commute axiom"); it is also the engine of the erasure
    procedure (Sec. 6). Always succeeds: an expression that is not one
    of the tail-context forms is an [L = \[\]] leaf, where the frame is
    simply plugged. *)
let rec commute frame (e : expr) : expr =
  match e with
  | Case (scrut, alts) ->
      Case
        ( scrut,
          List.map
            (fun a -> { a with alt_rhs = commute_fresh frame a.alt_rhs })
            alts )
  | Let (b, body) -> Let (b, commute frame body)
  | Join (jb, body) ->
      let push d = { d with j_rhs = commute_fresh frame d.j_rhs } in
      let jb' =
        match jb with
        | JNonRec d -> JNonRec (push d)
        | JRec ds -> JRec (List.map push ds)
      in
      Join (jb', commute_fresh frame body)
  | Jump (j, phis, es, ty) -> (
      match frame_result_ty frame ty with
      | Some ty' -> Jump (j, phis, es, ty')
      | None -> plug frame e)
  | _ -> plug_fresh frame e

and commute_fresh frame e =
  (* Each placement of the frame gets fresh binders. *)
  match frame with
  | FCase alts ->
      let dummy = mk_var "cm" (Types.bottom ()) in
      (match Subst.freshen (Case (Var dummy, alts)) with
      | Case (_, alts') -> commute (FCase alts') e
      | _ -> assert false)
  | FApp arg -> commute (FApp (Subst.freshen arg)) e
  | FTyApp _ -> commute frame e
