(** Higher-order-abstract-syntax builders for well-typed F_J terms:
    binders are allocated fresh and passed to OCaml functions, so
    scoping mistakes are impossible by construction. Used throughout
    the tests, examples and benches. *)

open Syntax

(** The builtin datatype environment used by the constructors below. *)
val dc : Datacon.env

(** {1 Literals and primops} *)

val int : int -> expr
val char : char -> expr
val str : string -> expr
val add : expr -> expr -> expr
val sub : expr -> expr -> expr
val mul : expr -> expr -> expr
val div_ : expr -> expr -> expr
val mod_ : expr -> expr -> expr
val eq : expr -> expr -> expr
val ne : expr -> expr -> expr
val lt : expr -> expr -> expr
val le : expr -> expr -> expr
val gt : expr -> expr -> expr
val ge : expr -> expr -> expr

(** {1 Binders (HOAS)} *)

val lam : string -> Types.t -> (expr -> expr) -> expr
val lam2 : string -> Types.t -> string -> Types.t -> (expr -> expr -> expr) -> expr

val lam3 :
  string -> Types.t -> string -> Types.t -> string -> Types.t ->
  (expr -> expr -> expr -> expr) -> expr

val tlam : string -> (Types.t -> expr) -> expr

(** Non-recursive let; the binder's type is computed from the rhs. *)
val let_ : string -> expr -> (expr -> expr) -> expr

val letrec1 : string -> Types.t -> (expr -> expr) -> (expr -> expr) -> expr

(** Non-recursive join point; the body receives a jump builder taking
    the arguments and claimed result type. *)
val join1 :
  string ->
  (string * Types.t) list ->
  (expr list -> expr) ->
  ((expr list -> Types.t -> expr) -> expr) ->
  expr

(** Recursive join point; the rhs also receives the jump builder. *)
val joinrec1 :
  string ->
  (string * Types.t) list ->
  ((expr list -> Types.t -> expr) -> expr list -> expr) ->
  ((expr list -> Types.t -> expr) -> expr) ->
  expr

(** {1 Datatypes} *)

val con : ?env:Datacon.env -> string -> Types.t list -> expr list -> expr
val true_ : expr
val false_ : expr
val unit_ : expr
val nothing : Types.t -> expr
val just : Types.t -> expr -> expr
val nil : Types.t -> expr
val cons : Types.t -> expr -> expr -> expr
val pair : Types.t -> Types.t -> expr -> expr -> expr
val list_ty : Types.t -> Types.t
val maybe_ty : Types.t -> Types.t
val pair_ty : Types.t -> Types.t -> Types.t
val list_of : Types.t -> expr list -> expr
val int_list : int list -> expr

(** {1 Case expressions} *)

val alt_con :
  ?env:Datacon.env ->
  string -> Types.t list -> string list -> (expr list -> expr) -> alt

val alt_lit : Literal.t -> expr -> alt
val alt_default : expr -> alt
val case : expr -> alt list -> expr
val if_ : expr -> expr -> expr -> expr

(** {1 Application} *)

val app : expr -> expr -> expr
val app2 : expr -> expr -> expr -> expr
val app3 : expr -> expr -> expr -> expr -> expr
val tyapp : expr -> Types.t -> expr
