(** Pretty-printing of F_J terms in the paper's notation
    ([join j x = rhs in body], [jump j @phi e tau]) — the Core dumps
    users pore over (Sec. 8). *)

val pp_var_bind : Format.formatter -> Syntax.var -> unit
val pp_var_occ : Format.formatter -> Syntax.var -> unit
val pp_bind : Format.formatter -> Syntax.bind -> unit
val pp_jbind : Format.formatter -> Syntax.jbind -> unit
val pp_alt : Format.formatter -> Syntax.alt -> unit
val pp_pat : Format.formatter -> Syntax.pat -> unit

(** Print a whole expression. *)
val pp : Format.formatter -> Syntax.expr -> unit

val to_string : Syntax.expr -> string
