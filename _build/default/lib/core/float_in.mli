(** The Float In pass: move let bindings toward their use sites
    (enabling contification, cf. the Moby staging of Sec. 4). Never
    pushes under a lambda, into join/letrec right-hand sides, or into
    the head of a call (un-saturation, Sec. 7). *)

(** Returns the floated term and whether anything moved. *)
val run : Syntax.expr -> Syntax.expr * bool
