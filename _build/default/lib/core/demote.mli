(** Demoting join points to ordinary bindings — the right-to-left
    reading of [contify], used by {!Erase} and the baseline pipeline.

    Precondition: every jump to a demoted label is a tail call
    ({!Erase.commuting_normal_form} establishes this). *)

(** Demote every join binding (bottom-up); jumps become saturated
    calls. *)
val demote : Syntax.expr -> Syntax.expr

(** Demote a single [Join] at the root only. *)
val demote_top : Syntax.expr -> Syntax.expr
