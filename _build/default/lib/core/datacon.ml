(** Data constructors and datatype environments.

    A datatype declaration

    {v data T a1 ... an = K1 sigma_11 ... | K2 ... v}

    introduces a type constructor [T] of arity [n] and data constructors
    [Ki]. The function [typeof Ki] of Fig. 2 is {!ty}:
    [forall a1 ... an. sigma_i1 -> ... -> T a1 ... an], and [ctors T] is
    {!constructors_of}. *)

type t = {
  name : string;  (** Constructor name [K]. *)
  tycon : string;  (** Parent type constructor [T]. *)
  univ : Ident.t list;  (** Universal type variables of [T]. *)
  arg_tys : Types.t list;  (** Field types, mentioning [univ]. *)
  tag : int;  (** Position within the datatype, from 0. *)
}

type tycon = {
  tc_name : string;
  tc_tyvars : Ident.t list;
  tc_cons : t list;  (** In declaration order; tags are indices. *)
}

(** Maps both type-constructor names and data-constructor names. *)
type env = { tycons : tycon Stringmap.t; cons : t Stringmap.t }

let arity (dc : t) = List.length dc.arg_tys

(** Result type [T a1 ... an] of a constructor, at its universal
    variables. *)
let result_ty (dc : t) =
  Types.apps (Types.Con dc.tycon) (List.map Types.var dc.univ)

(** [typeof K]: the full System F type of the constructor. *)
let ty (dc : t) =
  Types.foralls dc.univ (Types.arrows dc.arg_tys (result_ty dc))

(** [instantiate_args dc phis]: the field types of [dc] with its
    universal variables instantiated to [phis]. *)
let instantiate_args (dc : t) (phis : Types.t list) =
  if List.length phis <> List.length dc.univ then
    invalid_arg "Datacon.instantiate_args: arity mismatch";
  let env =
    List.fold_left2
      (fun m a phi -> Ident.Map.add a phi m)
      Ident.Map.empty dc.univ phis
  in
  List.map (Types.subst env) dc.arg_tys

(** Constructor identity is by name (names are globally unique within an
    environment). *)
let equal (a : t) (b : t) = String.equal a.name b.name

let pp ppf (dc : t) = Fmt.string ppf dc.name

(* ------------------------------------------------------------------ *)
(* Environments                                                        *)
(* ------------------------------------------------------------------ *)

let empty_env = { tycons = Stringmap.empty; cons = Stringmap.empty }

exception Duplicate of string

(** [declare env ~name ~tyvars cons] adds the datatype [name] with the
    given constructors (name, field types). Raises {!Duplicate} if any
    name is already bound. *)
let declare env ~name ~tyvars (cons : (string * Types.t list) list) =
  if Stringmap.mem name env.tycons then raise (Duplicate name);
  let dcs =
    List.mapi
      (fun tag (cname, arg_tys) ->
        { name = cname; tycon = name; univ = tyvars; arg_tys; tag })
      cons
  in
  let tc = { tc_name = name; tc_tyvars = tyvars; tc_cons = dcs } in
  let cons =
    List.fold_left
      (fun m (dc : t) ->
        if Stringmap.mem dc.name m then raise (Duplicate dc.name);
        Stringmap.add dc.name dc m)
      env.cons dcs
  in
  { tycons = Stringmap.add name tc env.tycons; cons }

let find_con env name = Stringmap.find_opt name env.cons
let find_tycon env name = Stringmap.find_opt name env.tycons

(** [ctors T]: all constructors of a datatype, in declaration order. *)
let constructors_of env tycon_name =
  match find_tycon env tycon_name with
  | Some tc -> tc.tc_cons
  | None -> []

(** The environment containing the wired-in datatypes every program may
    assume: [Bool], [Unit], [Pair], [Maybe], [Either], [List],
    [Ordering]. Surface programs may declare more. *)
let builtins =
  let a = Ident.fresh "a" and b = Ident.fresh "b" in
  let va = Types.var a and vb = Types.var b in
  let env = empty_env in
  let env =
    declare env ~name:"Bool" ~tyvars:[] [ ("False", []); ("True", []) ]
  in
  let env = declare env ~name:"Unit" ~tyvars:[] [ ("MkUnit", []) ] in
  let env =
    declare env ~name:"Pair" ~tyvars:[ a; b ] [ ("MkPair", [ va; vb ]) ]
  in
  let env =
    declare env ~name:"Maybe" ~tyvars:[ a ]
      [ ("Nothing", []); ("Just", [ va ]) ]
  in
  let env =
    declare env ~name:"Either" ~tyvars:[ a; b ]
      [ ("Left", [ va ]); ("Right", [ vb ]) ]
  in
  let env =
    declare env ~name:"List" ~tyvars:[ a ]
      [ ("Nil", []); ("Cons", [ va; Types.apps (Types.Con "List") [ va ] ]) ]
  in
  let env =
    declare env ~name:"Ordering" ~tyvars:[]
      [ ("LT", []); ("EQ", []); ("GT", []) ]
  in
  env

(** Look up a builtin constructor; raises if absent (programming error). *)
let builtin name =
  match find_con builtins name with
  | Some dc -> dc
  | None -> invalid_arg ("Datacon.builtin: unknown constructor " ^ name)

let true_con = builtin "True"
let false_con = builtin "False"
let of_bool b = if b then true_con else false_con
