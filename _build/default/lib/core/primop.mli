(** Primitive operations over literals: saturated and strict.
    Comparisons return the [Bool] datatype. *)

type t =
  | Add | Sub | Mul | Div | Mod | Neg
  | Eq | Ne | Lt | Le | Gt | Ge
  | CharEq | Ord | Chr | StrLen | StrIdx

val all : t list

(** Argument types and result type. *)
val signature : t -> Types.t list * Types.t

val arity : t -> int
val name : t -> string
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Constant-fold to a literal ([None] when stuck or boolean). *)
val fold_lit : t -> Literal.t list -> Literal.t option

(** Constant-fold operations with a boolean result. *)
val fold_bool : t -> Literal.t list -> bool option
