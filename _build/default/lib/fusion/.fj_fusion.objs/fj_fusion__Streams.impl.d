lib/fusion/streams.ml: Fj_core Fj_surface Fmt
