lib/fusion/streams.mli: Fj_core
