(** Stream fusion in the object language (Sec. 5 of the paper).

    A stream is a state plus a stepper function. Two competing [Step]
    types:

    - {b skipless} (Svenningsson's unfold/destroy):
      [data Step s a = Done | Yield s a]. [filter] needs a {e
      recursive} stepper, which — before join points — "breaks up the
      chain of cases by putting a loop in the way", making pipelines
      containing [filter] unfusible.
    - {b skip-ful} (Coutts–Leshchinskiy–Stewart):
      [data Step s a = Done | Skip s | Yield s a]. [filter]'s stepper
      becomes non-recursive, so it fuses — but "it complicates
      everything else": three cases instead of two everywhere, and
      two-stream consumers like [zip] need buffering states.

    The paper's claim: {e with recursive join points, the skipless
    version fuses just fine} — contification turns [filter]'s loop into
    a recursive join point, and the consumer's case commutes into it
    ([jfloat]), so Yield/Done constructors cancel and the fused loop
    allocates nothing per element. "Result: simpler code, less of it,
    and faster to execute. It's a straight win."

    Since our F_J (like the paper's) omits existential types, [Stream]
    is parameterised by its state type, which composes fine under
    Hindley–Milner inference. *)

(** Skipless (unfold/destroy) combinators, in surface syntax. *)
let skipless_source =
  {|
data Step s a = Done | Yield s a
data Stream s a = MkStream s (s -> Step s a)

-- enumFromTo as a stream
def sFromTo lo hi =
  MkStream lo (\s -> if s > hi then Done else Yield (s + 1) s)

def sMap f str = case str of {
  MkStream s0 next ->
    MkStream s0 (\s -> case next s of {
      Done -> Done;
      Yield s2 x -> Yield s2 (f x)
    })
}

-- The troublesome one: a RECURSIVE stepper.
def sFilter p str = case str of {
  MkStream s0 next ->
    MkStream s0 (\s ->
      let rec loop t = case next t of {
        Done -> Done;
        Yield t2 x -> if p x then Yield t2 x else loop t2
      } in loop s)
}

def sTake n str = case str of {
  MkStream s0 next ->
    MkStream (n, s0) (\st -> case st of {
      (k, s) ->
        if k <= 0 then Done
        else case next s of {
          Done -> Done;
          Yield s2 x -> Yield (k - 1, s2) x
        }
    })
}

def sZipWith f sa sb = case sa of {
  MkStream a0 nexta -> case sb of {
    MkStream b0 nextb ->
      MkStream (a0, b0) (\st -> case st of {
        (sa2, sb2) -> case nexta sa2 of {
          Done -> Done;
          Yield sa3 x -> case nextb sb2 of {
            Done -> Done;
            Yield sb3 y -> Yield (sa3, sb3) (f x y)
          }
        }
      })
  }
}

def sSum str = case str of {
  MkStream s0 next ->
    let rec go acc s = case next s of {
      Done -> acc;
      Yield s2 x -> go (acc + x) s2
    } in go 0 s0
}

def sFoldl f z str = case str of {
  MkStream s0 next ->
    let rec go acc s = case next s of {
      Done -> acc;
      Yield s2 x -> go (f acc x) s2
    } in go z s0
}

def sLength str = case str of {
  MkStream s0 next ->
    let rec go acc s = case next s of {
      Done -> acc;
      Yield s2 x -> go (acc + 1) s2
    } in go 0 s0
}

def sToList str = case str of {
  MkStream s0 next ->
    let rec go s = case next s of {
      Done -> Nil;
      Yield s2 x -> Cons x (go s2)
    } in go s0
}

def sFromList xs =
  MkStream xs (\ys -> case ys of {
    Nil -> Done;
    Cons x rest -> Yield rest x
  })
|}

(** Skip-ful combinators (Coutts et al.), in surface syntax. *)
let skipful_source =
  {|
data Step3 s a = Done3 | Skip3 s | Yield3 s a
data Stream3 s a = MkStream3 s (s -> Step3 s a)

def tFromTo lo hi =
  MkStream3 lo (\s -> if s > hi then Done3 else Yield3 (s + 1) s)

def tMap f str = case str of {
  MkStream3 s0 next ->
    MkStream3 s0 (\s -> case next s of {
      Done3 -> Done3;
      Skip3 s2 -> Skip3 s2;
      Yield3 s2 x -> Yield3 s2 (f x)
    })
}

-- filter is NON-recursive here: that is the whole point of Skip.
def tFilter p str = case str of {
  MkStream3 s0 next ->
    MkStream3 s0 (\s -> case next s of {
      Done3 -> Done3;
      Skip3 s2 -> Skip3 s2;
      Yield3 s2 x -> if p x then Yield3 s2 x else Skip3 s2
    })
}

def tSum str = case str of {
  MkStream3 s0 next ->
    let rec go acc s = case next s of {
      Done3 -> acc;
      Skip3 s2 -> go acc s2;
      Yield3 s2 x -> go (acc + x) s2
    } in go 0 s0
}

def tLength str = case str of {
  MkStream3 s0 next ->
    let rec go acc s = case next s of {
      Done3 -> acc;
      Skip3 s2 -> go acc s2;
      Yield3 s2 x -> go (acc + 1) s2
    } in go 0 s0
}

-- zip with Skip needs a one-element buffer in the state: "functions
-- like zip that consume two lists become more complicated and less
-- efficient."
def tZipWith f sa sb = case sa of {
  MkStream3 a0 nexta -> case sb of {
    MkStream3 b0 nextb ->
      MkStream3 ((a0, b0), Nothing) (\st -> case st of {
        (ss, buf) -> case ss of {
          (sa2, sb2) -> case buf of {
            Nothing -> case nexta sa2 of {
              Done3 -> Done3;
              Skip3 sa3 -> Skip3 ((sa3, sb2), Nothing);
              Yield3 sa3 x -> Skip3 ((sa3, sb2), Just x)
            };
            Just x -> case nextb sb2 of {
              Done3 -> Done3;
              Skip3 sb3 -> Skip3 ((sa2, sb3), Just x);
              Yield3 sb3 y -> Yield3 ((sa2, sb3), Nothing) (f x y)
            }
          }
        }
      })
  }
}

def tToList str = case str of {
  MkStream3 s0 next ->
    let rec go s = case next s of {
      Done3 -> Nil;
      Skip3 s2 -> go s2;
      Yield3 s2 x -> Cons x (go s2)
    } in go s0
}
|}

(** Both libraries, for programs that compare representations. *)
let source = skipless_source ^ "\n" ^ skipful_source

(** Compile a pipeline expression (given as the body of [main]) against
    the stream library and the standard prelude. *)
let compile_pipeline (main_body : string) :
    Fj_core.Datacon.env * Fj_core.Syntax.expr =
  Fj_surface.Prelude.compile (source ^ "\ndef main = " ^ main_body ^ "\n")

(* ------------------------------------------------------------------ *)
(* Canonical pipelines (used by tests, benches and examples)            *)
(* ------------------------------------------------------------------ *)

(** sum . map (times 3) . filter odd over [1..n] — skipless streams. *)
let sum_map_filter_skipless n =
  Fmt.str "sSum (sMap (\\x -> x * 3) (sFilter odd (sFromTo 1 %d)))" n

(** Same pipeline, skip-ful streams. *)
let sum_map_filter_skipful n =
  Fmt.str "tSum (tMap (\\x -> x * 3) (tFilter odd (tFromTo 1 %d)))" n

(** Same pipeline on plain lists (no fusion possible). *)
let sum_map_filter_lists n =
  Fmt.str "sum (map (\\x -> x * 3) (filter odd (enumFromTo 1 %d)))" n

(** Dot product via zipWith: where Skip hurts. *)
let dot_product_skipless n =
  Fmt.str
    "sSum (sZipWith (\\x y -> x * y) (sFromTo 1 %d) (sMap (\\x -> x + 1) \
     (sFromTo 1 %d)))"
    n n

let dot_product_skipful n =
  Fmt.str
    "tSum (tZipWith (\\x y -> x * y) (tFromTo 1 %d) (tMap (\\x -> x + 1) \
     (tFromTo 1 %d)))"
    n n

(** Filter-heavy pipeline: two filters in a row. *)
let double_filter_skipless n =
  Fmt.str
    "sSum (sFilter (\\x -> x %% 3 /= 0) (sFilter odd (sFromTo 1 %d)))" n

let double_filter_skipful n =
  Fmt.str
    "tSum (tFilter (\\x -> x %% 3 /= 0) (tFilter odd (tFromTo 1 %d)))" n
