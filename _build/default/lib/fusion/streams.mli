(** Stream fusion in the object language (Sec. 5): skipless
    (unfold/destroy) and skip-ful combinator libraries in surface
    syntax, plus the canonical benchmark pipelines. *)

(** Skipless combinators: [Step s a = Done | Yield s a]; [sFilter] has
    a recursive stepper (the join-point test case). *)
val skipless_source : string

(** Skip-ful combinators: [Step3 s a = Done3 | Skip3 s | Yield3 s a];
    [tFilter] is non-recursive, [tZipWith] needs a buffered state. *)
val skipful_source : string

(** Both libraries concatenated. *)
val source : string

(** Compile a pipeline (the body of [main]) against both stream
    libraries and the prelude. *)
val compile_pipeline :
  string -> Fj_core.Datacon.env * Fj_core.Syntax.expr

val sum_map_filter_skipless : int -> string
val sum_map_filter_skipful : int -> string
val sum_map_filter_lists : int -> string
val dot_product_skipless : int -> string
val dot_product_skipful : int -> string
val double_filter_skipless : int -> string
val double_filter_skipful : int -> string
