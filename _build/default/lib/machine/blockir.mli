(** The block intermediate representation: procedures whose bodies are
    instruction trees with labelled blocks. [Goto] (a lowered jump)
    binds block parameters and transfers control with no allocation;
    calls go through heap-allocated closures — the Sec. 2–3 codegen
    story. *)

module Ident = Fj_core.Ident

type label = Ident.t

type atom = AVar of Ident.t | ALit of Fj_core.Literal.t

type rhs =
  | RAtom of atom
  | RPrim of Fj_core.Primop.t * atom list
  | RAllocCon of string * int * atom list
  | RAllocClos of Ident.t * atom list
  | RProj of atom * int

type pat = PTag of string * Ident.t list | PLit of Fj_core.Literal.t | PAny

type block_expr =
  | Let of Ident.t * rhs * block_expr
  | LetRecClos of (Ident.t * Ident.t * atom list) list * block_expr
  | LetBlock of bool * (label * Ident.t list * block_expr) list * block_expr
  | Case of atom * (pat * block_expr) list
  | Goto of label * atom list
  | Return of atom
  | TailApply of atom * atom list
  | Apply of Ident.t * atom * atom list * block_expr

type code = {
  code_name : Ident.t;
  params : Ident.t list;
  captures : Ident.t list;
  body : block_expr;
}

type program = { codes : code Ident.Map.t; main : block_expr }

val pp_atom : Format.formatter -> atom -> unit
val pp_rhs : Format.formatter -> rhs -> unit
val pp_block_expr : Format.formatter -> block_expr -> unit
val pp_code : Format.formatter -> code -> unit
val pp_program : Format.formatter -> program -> unit
