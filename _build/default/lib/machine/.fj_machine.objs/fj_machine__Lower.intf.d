lib/machine/lower.mli: Blockir Fj_core
