lib/machine/bmachine.mli: Blockir Fj_core Format
