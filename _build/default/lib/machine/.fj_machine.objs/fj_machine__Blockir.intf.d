lib/machine/blockir.mli: Fj_core Format
