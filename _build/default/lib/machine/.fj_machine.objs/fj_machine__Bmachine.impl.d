lib/machine/bmachine.ml: Array Blockir Fj_core Fmt Ident List String
