lib/machine/blockir.ml: Fj_core Fmt List
