lib/machine/lower.ml: Blockir Fj_core Fmt Ident List String Syntax
