(** Lowering F_J to the block IR: closure conversion, with join points
    becoming labelled blocks and jumps becoming gotos (the Sec. 2–3
    code-generation story). Call-by-value; see {!Blockir}. *)

exception Unsupported of string

val lower_program : Fj_core.Syntax.expr -> Blockir.program
