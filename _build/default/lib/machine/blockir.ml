(** A low-level block intermediate representation.

    This is the "C compiler" end of the paper's story (Sec. 2–3): code
    is organised into procedures whose bodies are trees of instructions
    with {e labelled blocks}; transferring control to a block is
    [Goto] — "adjust the stack and jump" — with {b no allocation},
    whereas calling a function goes through a heap-allocated closure.

    Lowering (see {!Lower}) maps F_J join points to blocks and jumps to
    gotos; [let]-bound functions become closures. Running the same
    program optimised with and without join points on {!Bmachine} makes
    the codegen claim measurable: the join-point version executes gotos
    where the baseline allocates and calls.

    The block machine is call-by-value; benchmark programs compared
    against the call-by-need {!Fj_core.Eval} are total and
    evaluation-order independent (the paper notes everything applies
    equally to a call-by-value language, Sec. 10). *)

module Ident = Fj_core.Ident

type label = Ident.t
(** Block labels, distinct from variables. *)

type atom =
  | AVar of Ident.t
  | ALit of Fj_core.Literal.t

type rhs =
  | RAtom of atom
  | RPrim of Fj_core.Primop.t * atom list
  | RAllocCon of string * int * atom list
      (** Constructor name, tag, fields — allocates [1 + n] words
          ([0] for nullary constructors, which are static). *)
  | RAllocClos of Ident.t * atom list
      (** Code pointer + captured environment — allocates. *)
  | RProj of atom * int  (** Field projection from a constructor. *)

type pat = PTag of string * Ident.t list | PLit of Fj_core.Literal.t | PAny

type block_expr =
  | Let of Ident.t * rhs * block_expr
  | LetRecClos of (Ident.t * Ident.t * atom list) list * block_expr
      (** Mutually recursive closure allocation: (binder, code, captures);
          captures may mention the binders (patched after allocation). *)
  | LetBlock of bool * (label * Ident.t list * block_expr) list * block_expr
      (** Labelled blocks (recursive if the flag is set) — F_J join
          points. {b Allocates nothing.} *)
  | Case of atom * (pat * block_expr) list
  | Goto of label * atom list  (** Jump: adjust the stack and go. *)
  | Return of atom
  | TailApply of atom * atom list  (** Tail call through a closure. *)
  | Apply of Ident.t * atom * atom list * block_expr
      (** [x = f(args); continue]: non-tail call, pushes a frame. *)

type code = {
  code_name : Ident.t;
  params : Ident.t list;  (** Excluding the closure itself. *)
  captures : Ident.t list;  (** Environment slots. *)
  body : block_expr;
}

type program = {
  codes : code Ident.Map.t;
  main : block_expr;
}

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_atom ppf = function
  | AVar x -> Ident.pp ppf x
  | ALit l -> Fj_core.Literal.pp ppf l

let pp_atoms = Fmt.(list ~sep:comma pp_atom)

let pp_rhs ppf = function
  | RAtom a -> pp_atom ppf a
  | RPrim (op, args) ->
      Fmt.pf ppf "%a(%a)" Fj_core.Primop.pp op pp_atoms args
  | RAllocCon (c, tag, fields) ->
      Fmt.pf ppf "alloc %s#%d(%a)" c tag pp_atoms fields
  | RAllocClos (code, caps) ->
      Fmt.pf ppf "closure %a[%a]" Ident.pp code pp_atoms caps
  | RProj (a, i) -> Fmt.pf ppf "%a.%d" pp_atom a i

let rec pp_block_expr ppf = function
  | Let (x, r, k) ->
      Fmt.pf ppf "@[<v>%a = %a@,%a@]" Ident.pp x pp_rhs r pp_block_expr k
  | LetRecClos (cs, k) ->
      Fmt.pf ppf "@[<v>rec closures {%a}@,%a@]"
        Fmt.(
          list ~sep:semi (fun ppf (x, c, caps) ->
              Fmt.pf ppf "%a = closure %a[%a]" Ident.pp x Ident.pp c pp_atoms
                caps))
        cs pp_block_expr k
  | LetBlock (recursive, blocks, k) ->
      Fmt.pf ppf "@[<v>%s {@;<0 2>@[<v>%a@]@,}@,%a@]"
        (if recursive then "blocks rec" else "blocks")
        Fmt.(
          list ~sep:cut (fun ppf (l, ps, b) ->
              Fmt.pf ppf "@[<v 2>%a(%a):@ %a@]" Ident.pp l
                (list ~sep:comma Ident.pp) ps pp_block_expr b))
        blocks pp_block_expr k
  | Case (a, alts) ->
      Fmt.pf ppf "@[<v 2>case %a:@ %a@]" pp_atom a
        Fmt.(
          list ~sep:cut (fun ppf (p, b) ->
              let pp_pat ppf = function
                | PTag (c, xs) ->
                    Fmt.pf ppf "%s(%a)" c (list ~sep:comma Ident.pp) xs
                | PLit l -> Fj_core.Literal.pp ppf l
                | PAny -> Fmt.string ppf "_"
              in
              Fmt.pf ppf "@[<v 2>%a ->@ %a@]" pp_pat p pp_block_expr b))
        alts
  | Goto (l, args) -> Fmt.pf ppf "goto %a(%a)" Ident.pp l pp_atoms args
  | Return a -> Fmt.pf ppf "return %a" pp_atom a
  | TailApply (f, args) -> Fmt.pf ppf "tailcall %a(%a)" pp_atom f pp_atoms args
  | Apply (x, f, args, k) ->
      Fmt.pf ppf "@[<v>%a = call %a(%a)@,%a@]" Ident.pp x pp_atom f pp_atoms
        args pp_block_expr k

let pp_code ppf c =
  Fmt.pf ppf "@[<v 2>code %a(%a)[%a]:@ %a@]" Ident.pp c.code_name
    Fmt.(list ~sep:comma Ident.pp)
    c.params
    Fmt.(list ~sep:comma Ident.pp)
    c.captures pp_block_expr c.body

let pp_program ppf p =
  Fmt.pf ppf "@[<v>%a@,@[<v 2>main:@ %a@]@]"
    Fmt.(list ~sep:cut pp_code)
    (List.map snd (Ident.Map.bindings p.codes))
    pp_block_expr p.main
