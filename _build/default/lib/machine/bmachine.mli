(** Executor for the block IR with instruction/allocation counters:
    [Goto] binds parameters and transfers — zero allocation; calls go
    through heap-allocated closures (eval/apply, PAPs). *)

type stats = {
  mutable instrs : int;
  mutable objects : int;
  mutable words : int;
  mutable gotos : int;
  mutable calls : int;
  mutable max_stack : int;
}

val pp_stats : Format.formatter -> stats -> unit

type value

exception Stuck of string
exception Out_of_fuel

val run : ?fuel:int -> Blockir.program -> value * stats

val pp_value : Format.formatter -> value -> unit

(** First-order view, comparable with the core evaluator's. *)
val tree_of_value : value -> Fj_core.Eval.tree
