(** Hindley–Milner type inference and elaboration to System F_J.

    The surface language is implicitly typed; F_J is explicitly typed
    System F. Inference is algorithm W with mutable unification
    variables; elaboration inserts the type abstractions and
    applications:

    - each top-level [def] is generalized — its residual unification
      variables become [/\a] binders;
    - each occurrence of a top-level name records its instantiation and
      becomes a [TyApp] spine;
    - local [let]s are monomorphic (a deliberate simplification, as in
      many intermediate passes; polymorphism lives at the top level).

    The elaborated program contains {e no} join points: they are
    inferred later by {!Fj_core.Contify} and created by
    {!Fj_core.Simplify}, exactly as in the paper (Sec. 4, 7). *)

open Fj_core
open Ast

exception Type_error of string * pos

let err pos fmt = Fmt.kstr (fun m -> raise (Type_error (m, pos))) fmt

(* ------------------------------------------------------------------ *)
(* Internal types                                                      *)
(* ------------------------------------------------------------------ *)

type ity = IVar of tv ref | IArrow of ity * ity | ICon of string * ity list
and tv = Unbound of int | Link of ity

let tv_counter = ref 0

let fresh_tv () =
  incr tv_counter;
  IVar (ref (Unbound !tv_counter))

let i_int = ICon ("Int", [])
let i_char = ICon ("Char", [])
let i_string = ICon ("String", [])
let i_bool = ICon ("Bool", [])
let i_list t = ICon ("List", [ t ])
let i_pair a b = ICon ("Pair", [ a; b ])

let rec repr = function
  | IVar r as t -> ( match !r with Link t' -> repr t' | Unbound _ -> t)
  | t -> t

let rec pp_ity ppf t =
  match repr t with
  | IVar r -> (
      match !r with
      | Unbound n -> Fmt.pf ppf "t%d" n
      | Link _ -> assert false)
  | IArrow (a, b) -> Fmt.pf ppf "(%a -> %a)" pp_ity a pp_ity b
  | ICon (c, []) -> Fmt.string ppf c
  | ICon (c, args) ->
      Fmt.pf ppf "(%s%a)" c
        Fmt.(list ~sep:nop (fun ppf t -> Fmt.pf ppf " %a" pp_ity t))
        args

let rec occurs_tv (r : tv ref) t =
  match repr t with
  | IVar r' -> r == r'
  | IArrow (a, b) -> occurs_tv r a || occurs_tv r b
  | ICon (_, args) -> List.exists (occurs_tv r) args

let rec unify pos t1 t2 =
  let t1 = repr t1 and t2 = repr t2 in
  match (t1, t2) with
  | IVar r1, IVar r2 when r1 == r2 -> ()
  | IVar r, t | t, IVar r ->
      if occurs_tv r t then
        err pos "occurs check: cannot construct the infinite type %a ~ %a"
          pp_ity t1 pp_ity t2;
      r := Link t
  | IArrow (a1, b1), IArrow (a2, b2) ->
      unify pos a1 a2;
      unify pos b1 b2
  | ICon (c1, args1), ICon (c2, args2)
    when String.equal c1 c2 && List.length args1 = List.length args2 ->
      List.iter2 (unify pos) args1 args2
  | _ -> err pos "type mismatch: %a does not unify with %a" pp_ity t1 pp_ity t2

(* ------------------------------------------------------------------ *)
(* Schemes and environments                                            *)
(* ------------------------------------------------------------------ *)

(* A scheme quantifies over specific unbound tv cells, which after
   generalization are never unified again. *)
type scheme = { q : tv ref list; body : ity }

(* Instantiate, returning the body copy and the fresh type arguments in
   quantifier order. *)
let instantiate (s : scheme) : ity * ity list =
  let fresh = List.map (fun _ -> fresh_tv ()) s.q in
  let assoc = List.combine s.q fresh in
  let rec copy t =
    match repr t with
    | IVar r -> (
        match List.assq_opt r assoc with Some t' -> t' | None -> IVar r)
    | IArrow (a, b) -> IArrow (copy a, copy b)
    | ICon (c, args) -> ICon (c, List.map copy args)
  in
  (copy s.body, fresh)

(* Convert a (rank-1, forall-prefixed) core type to an ity given a
   mapping for its quantified variables. Used for data constructors. *)
let rec ity_of_core (m : ity Ident.Map.t) (t : Types.t) : ity =
  match t with
  | Types.Var a -> (
      match Ident.Map.find_opt a m with
      | Some it -> it
      | None -> invalid_arg "ity_of_core: unbound type variable")
  | Types.Con c -> ICon (c, [])
  | Types.Arrow (a, b) -> IArrow (ity_of_core m a, ity_of_core m b)
  | Types.App _ -> (
      let head, args = Types.split_apps t in
      match head with
      | Types.Con c -> ICon (c, List.map (ity_of_core m) args)
      | Types.Var a -> (
          match Ident.Map.find_opt a m with
          | Some (ICon (c, [])) when args = [] -> ICon (c, [])
          | _ -> invalid_arg "ity_of_core: higher-kinded type variable")
      | _ -> invalid_arg "ity_of_core: bad type application")
  | Types.Forall _ -> invalid_arg "ity_of_core: nested forall"

type env = {
  datacons : Datacon.env;
  tops : (string * (scheme * Syntax.var * Ident.t list)) list;
      (** Top-level defs: scheme, core binder, quantifier idents. *)
  locals : (string * (ity * Syntax.var)) list;  (** Monomorphic. *)
}

let lookup_local env x = List.assoc_opt x env.locals
let lookup_top env x = List.assoc_opt x env.tops

(* ------------------------------------------------------------------ *)
(* Zonking: ity -> Types.t                                             *)
(* ------------------------------------------------------------------ *)

(* [quant] maps generalized tv cells to core type variables; any other
   residual unification variable is ambiguous and defaults to [Unit]. *)
type zonker = { quant : (tv ref * Ident.t) list }

let rec zonk (z : zonker) (t : ity) : Types.t =
  match repr t with
  | IVar r -> (
      match List.assq_opt r z.quant with
      | Some a -> Types.Var a
      | None ->
          (* Ambiguous type: default. *)
          r := Link (ICon ("Unit", []));
          Types.unit)
  | IArrow (a, b) -> Types.Arrow (zonk z a, zonk z b)
  | ICon (c, args) -> Types.apps (Types.Con c) (List.map (zonk z) args)

(* ------------------------------------------------------------------ *)
(* Inference + elaboration                                             *)
(* ------------------------------------------------------------------ *)

(* Elaboration happens in one pass with inference: we build a thunked
   core expression that reads the final (zonked) types only when
   forced, after the whole def has been inferred. *)
type later = zonker -> Syntax.expr

(* Constructor schemes: instantiate [typeof K]. *)
let con_scheme env pos name : Datacon.t * ity list * ity =
  match Datacon.find_con env.datacons name with
  | None -> err pos "unknown data constructor %s" name
  | Some dc ->
      let fresh = List.map (fun _ -> fresh_tv ()) dc.univ in
      let m =
        List.fold_left2
          (fun m a t -> Ident.Map.add a t m)
          Ident.Map.empty dc.univ fresh
      in
      let arg_tys = List.map (ity_of_core m) dc.arg_tys in
      let res = ICon (dc.tycon, fresh) in
      (dc, fresh, List.fold_right (fun a b -> IArrow (a, b)) arg_tys res)

(* Primitive operations exposed as surface functions. *)
let prim_builtins : (string * Primop.t) list =
  [
    ("ord", Primop.Ord);
    ("chr", Primop.Chr);
    ("strLen", Primop.StrLen);
    ("strIdx", Primop.StrIdx);
  ]

let binop_prim = function
  | Add -> Primop.Add
  | Sub -> Primop.Sub
  | Mul -> Primop.Mul
  | Div -> Primop.Div
  | Mod -> Primop.Mod
  | Eq -> Primop.Eq
  | Ne -> Primop.Ne
  | Lt -> Primop.Lt
  | Le -> Primop.Le
  | Gt -> Primop.Gt
  | Ge -> Primop.Ge
  | And | Or | Cons -> invalid_arg "binop_prim"

(* The main inference function: returns the type and the deferred core
   builder. A constructor occurrence is represented curried, as an
   eta-expanded builder; saturated uses are recovered by the Simplifier
   (beta + constructor saturation are immediate). To keep the common
   case allocation-faithful we saturate syntactic application spines
   here instead. *)
let rec infer (env : env) (e : expr) : ity * later =
  match e.it with
  | EInt n ->
      (i_int, fun _ -> Syntax.Lit (Literal.Int n))
  | EChar c -> (i_char, fun _ -> Syntax.Lit (Literal.Char c))
  | EStr s -> (i_string, fun _ -> Syntax.Lit (Literal.String s))
  | EVar x -> (
      match lookup_local env x with
      | Some (it, v) ->
          (* The binder's placeholder type is patched at zonk time; the
             occurrence must carry the same final type. *)
          (it, fun z -> Syntax.Var { v with Syntax.v_ty = zonk z it })
      | None -> (
          match lookup_top env x with
          | Some (sch, v, qids) ->
              let it, inst = instantiate sch in
              ( it,
                fun z ->
                  let tys = List.map (zonk z) inst in
                  ignore qids;
                  Syntax.ty_apps (Syntax.Var v) tys )
          | None -> (
              match List.assoc_opt x prim_builtins with
              | Some op ->
                  let arg_tys, res = Primop.signature op in
                  let ty =
                    List.fold_right
                      (fun a b -> IArrow (ity_of_prim a, b))
                      arg_tys (ity_of_prim res)
                  in
                  ( ty,
                    fun _ ->
                      let vs =
                        List.map (fun t -> Syntax.mk_var "p" t) arg_tys
                      in
                      Syntax.lams vs
                        (Syntax.Prim
                           (op, List.map (fun v -> Syntax.Var v) vs)) )
              | None -> err e.pos "variable %s is not in scope" x)))
  | ECon _ | EApp _ -> infer_spine env e
  | ELam (params, body) ->
      let locals, core_params =
        List.fold_left
          (fun (ls, ps) p ->
            let it = fresh_tv () in
            let v = Syntax.mk_var p (Types.unit (* patched at zonk *)) in
            ((p, (it, v)) :: ls, (p, it, v) :: ps))
          (env.locals, []) params
      in
      let core_params = List.rev core_params in
      let body_ty, body_l = infer { env with locals } body in
      let ty =
        List.fold_right (fun (_, it, _) acc -> IArrow (it, acc)) core_params
          body_ty
      in
      ( ty,
        fun z ->
          List.fold_right
            (fun (_, it, v) acc ->
              Syntax.Lam ({ v with Syntax.v_ty = zonk z it }, acc))
            core_params (body_l z) )
  | ELet { recursive; name; params; rhs; body } ->
      let fn_ty = fresh_tv () in
      let v = Syntax.mk_var name Types.unit in
      let rhs_env =
        if recursive then { env with locals = (name, (fn_ty, v)) :: env.locals }
        else env
      in
      let rhs_expr =
        if params = [] then rhs
        else { it = ELam (params, rhs); pos = e.pos }
      in
      let rhs_ty, rhs_l = infer rhs_env rhs_expr in
      unify e.pos fn_ty rhs_ty;
      let body_ty, body_l =
        infer { env with locals = (name, (fn_ty, v)) :: env.locals } body
      in
      ( body_ty,
        fun z ->
          let v = { v with Syntax.v_ty = zonk z fn_ty } in
          let b =
            if recursive then Syntax.Rec [ (v, fix_var v (rhs_l z)) ]
            else Syntax.NonRec (v, rhs_l z)
          in
          Syntax.Let (b, body_l z) )
  | EIf (c, t, f) ->
      let ct, cl = infer env c in
      unify c.pos ct i_bool;
      let tt, tl = infer env t in
      let ft, fl = infer env f in
      unify e.pos tt ft;
      ( tt,
        fun z ->
          Syntax.Case
            ( cl z,
              [
                {
                  alt_pat = Syntax.PCon (Datacon.builtin "True", []);
                  alt_rhs = tl z;
                };
                {
                  alt_pat = Syntax.PCon (Datacon.builtin "False", []);
                  alt_rhs = fl z;
                };
              ] ) )
  | EBinop (And, a, b) ->
      infer env
        { e with it = EIf (a, b, { e with it = ECon "False" }) }
  | EBinop (Or, a, b) ->
      infer env
        { e with it = EIf (a, { e with it = ECon "True" }, b) }
  | EBinop (Cons, hd, tl) ->
      infer_spine env
        {
          e with
          it = EApp ({ e with it = EApp ({ e with it = ECon "Cons" }, hd) }, tl);
        }
  | EBinop ((Eq | Ne) as op, a, b) -> (
      (* Equality is overloaded over Int and Char: resolve from the
         operand types, defaulting to Int. *)
      let at, al = infer env a in
      let bt, bl = infer env b in
      unify e.pos at bt;
      let is_char = match repr at with ICon ("Char", []) -> true | _ -> false in
      if not is_char then unify a.pos at i_int;
      match (op, is_char) with
      | Eq, false ->
          (i_bool, fun z -> Syntax.Prim (Primop.Eq, [ al z; bl z ]))
      | Ne, false ->
          (i_bool, fun z -> Syntax.Prim (Primop.Ne, [ al z; bl z ]))
      | Eq, true ->
          (i_bool, fun z -> Syntax.Prim (Primop.CharEq, [ al z; bl z ]))
      | Ne, true ->
          ( i_bool,
            fun z ->
              Syntax.Case
                ( Syntax.Prim (Primop.CharEq, [ al z; bl z ]),
                  [
                    {
                      alt_pat = Syntax.PCon (Datacon.builtin "True", []);
                      alt_rhs = Syntax.Con (Datacon.builtin "False", [], []);
                    };
                    {
                      alt_pat = Syntax.PCon (Datacon.builtin "False", []);
                      alt_rhs = Syntax.Con (Datacon.builtin "True", [], []);
                    };
                  ] ) )
      | _ -> assert false)
  | EBinop (op, a, b) ->
      let p = binop_prim op in
      let arg_tys, res = Primop.signature p in
      let want_a, want_b =
        match arg_tys with [ x; y ] -> (x, y) | _ -> assert false
      in
      let at, al = infer env a in
      let bt, bl = infer env b in
      unify a.pos at (ity_of_prim want_a);
      unify b.pos bt (ity_of_prim want_b);
      ( ity_of_prim res,
        fun z -> Syntax.Prim (p, [ al z; bl z ]) )
  | ENeg a ->
      let at, al = infer env a in
      unify a.pos at i_int;
      (i_int, fun z -> Syntax.Prim (Primop.Neg, [ al z ]))
  | EList elems ->
      let elt = fresh_tv () in
      let ls =
        List.map
          (fun el ->
            let t, l = infer env el in
            unify el.pos t elt;
            l)
          elems
      in
      ( i_list elt,
        fun z ->
          let phi = zonk z elt in
          let dc_cons = Datacon.builtin "Cons" in
          let dc_nil = Datacon.builtin "Nil" in
          List.fold_right
            (fun l acc -> Syntax.Con (dc_cons, [ phi ], [ l z; acc ]))
            ls
            (Syntax.Con (dc_nil, [ phi ], [])) )
  | ETuple (a, b) ->
      let at, al = infer env a in
      let bt, bl = infer env b in
      ( i_pair at bt,
        fun z ->
          Syntax.Con
            ( Datacon.builtin "MkPair",
              [ zonk z at; zonk z bt ],
              [ al z; bl z ] ) )
  | ECase (scrut, alts) -> infer_case env e.pos scrut alts

and ity_of_prim (t : Types.t) : ity =
  match t with
  | Types.Con c -> ICon (c, [])
  | _ -> invalid_arg "ity_of_prim"

(* If the recursive binder was shadowed... it is not: [fix_var] is
   identity; recursion is already wired through the environment. *)
and fix_var _v rhs = rhs

(* Application spines: saturate constructors where syntactically
   possible; eta-expand under-applied constructors. *)
and infer_spine env (e : expr) : ity * later =
  let rec spine e acc =
    match e.it with
    | EApp (f, a) -> spine f (a :: acc)
    | _ -> (e, acc)
  in
  let head, args = spine e [] in
  match head.it with
  | ECon name ->
      let dc, inst, con_ty = con_scheme env head.pos name in
      let arity = Datacon.arity dc in
      let n_args = List.length args in
      (* Infer argument types against the constructor type. *)
      let rec apply_args ty args acc_l =
        match args with
        | [] -> (ty, List.rev acc_l)
        | a :: rest -> (
            let at, al = infer env a in
            match repr ty with
            | IArrow (want, res) ->
                unify a.pos at want;
                apply_args res rest (al :: acc_l)
            | _ -> err a.pos "constructor %s applied to too many arguments" name)
      in
      let res_ty, arg_ls = apply_args con_ty args [] in
      if n_args = arity then
        ( res_ty,
          fun z ->
            Syntax.Con (dc, List.map (zonk z) inst, List.map (fun l -> l z) arg_ls)
        )
      else begin
        (* Under-applied: eta-expand the missing parameters. *)
        let rec missing ty k =
          if k = 0 then []
          else
            match repr ty with
            | IArrow (want, res) -> want :: missing res (k - 1)
            | _ -> assert false
        in
        let missing_tys = missing res_ty (arity - n_args) in
        let final_ty =
          List.fold_left
            (fun ty _ -> match repr ty with IArrow (_, r) -> r | _ -> assert false)
            res_ty missing_tys
        in
        ignore final_ty;
        ( res_ty,
          fun z ->
            let extra =
              List.map (fun it -> Syntax.mk_var "eta" (zonk z it)) missing_tys
            in
            Syntax.lams extra
              (Syntax.Con
                 ( dc,
                   List.map (zonk z) inst,
                   List.map (fun l -> l z) arg_ls
                   @ List.map (fun v -> Syntax.Var v) extra )) )
      end
  | _ ->
      (* Ordinary application. *)
      let head_ty, head_l = infer env head in
      let rec apply ty args acc_l =
        match args with
        | [] -> (ty, acc_l)
        | a :: rest ->
            let at, al = infer env a in
            let res = fresh_tv () in
            unify a.pos ty (IArrow (at, res));
            apply res rest (fun z -> Syntax.App (acc_l z, al z))
      in
      apply head_ty args head_l

and infer_case env pos scrut alts : ity * later =
  let scrut_ty, scrut_l = infer env scrut in
  let res_ty = fresh_tv () in
  if alts = [] then err pos "empty case expression";
  let alt_ls =
    List.map
      (fun (p, rhs) ->
        match p with
        | Ast.PWild ->
            let rt, rl = infer env rhs in
            unify rhs.pos rt res_ty;
            fun z -> { Syntax.alt_pat = Syntax.PDefault; alt_rhs = rl z }
        | Ast.PInt n ->
            unify pos scrut_ty i_int;
            let rt, rl = infer env rhs in
            unify rhs.pos rt res_ty;
            fun z ->
              { Syntax.alt_pat = Syntax.PLit (Literal.Int n); alt_rhs = rl z }
        | Ast.PChar c ->
            unify pos scrut_ty i_char;
            let rt, rl = infer env rhs in
            unify rhs.pos rt res_ty;
            fun z ->
              { Syntax.alt_pat = Syntax.PLit (Literal.Char c); alt_rhs = rl z }
        | Ast.PTuple (a, b) ->
            let ta = fresh_tv () and tb = fresh_tv () in
            unify pos scrut_ty (i_pair ta tb);
            let va = Syntax.mk_var a Types.unit
            and vb = Syntax.mk_var b Types.unit in
            let locals = (a, (ta, va)) :: (b, (tb, vb)) :: env.locals in
            let rt, rl = infer { env with locals } rhs in
            unify rhs.pos rt res_ty;
            fun z ->
              {
                Syntax.alt_pat =
                  Syntax.PCon
                    ( Datacon.builtin "MkPair",
                      [
                        { va with Syntax.v_ty = zonk z ta };
                        { vb with Syntax.v_ty = zonk z tb };
                      ] );
                alt_rhs = rl z;
              }
        | Ast.PCon (cname, binders) ->
            let dc, inst, con_ty = con_scheme env pos cname in
            if List.length binders <> Datacon.arity dc then
              err pos "pattern %s: expected %d binders, got %d" cname
                (Datacon.arity dc) (List.length binders);
            (* con_ty = args -> T inst *)
            let rec fields ty =
              match repr ty with
              | IArrow (a, r) -> a :: fields r
              | _ -> []
            in
            let field_tys = fields con_ty in
            unify pos scrut_ty (ICon (dc.tycon, inst));
            let bvars =
              List.map2
                (fun b t -> (b, t, Syntax.mk_var b Types.unit))
                binders field_tys
            in
            let locals =
              List.fold_left
                (fun ls (b, t, v) -> (b, (t, v)) :: ls)
                env.locals bvars
            in
            let rt, rl = infer { env with locals } rhs in
            unify rhs.pos rt res_ty;
            fun z ->
              {
                Syntax.alt_pat =
                  Syntax.PCon
                    ( dc,
                      List.map
                        (fun (_, t, v) -> { v with Syntax.v_ty = zonk z t })
                        bvars );
                alt_rhs = rl z;
              })
      alts
  in
  ( res_ty,
    fun z -> Syntax.Case (scrut_l z, List.map (fun f -> f z) alt_ls) )

(* ------------------------------------------------------------------ *)
(* Declarations and programs                                           *)
(* ------------------------------------------------------------------ *)

(* Free unification variables of a (zonk-free) type. *)
let rec free_tvs t acc =
  match repr t with
  | IVar r -> if List.memq r acc then acc else r :: acc
  | IArrow (a, b) -> free_tvs b (free_tvs a acc)
  | ICon (_, args) -> List.fold_left (fun acc t -> free_tvs t acc) acc args

let sty_to_core pos (tyvars : (string * Ident.t) list) (t : sty) : Types.t =
  let rec go = function
    | SVar a -> (
        match List.assoc_opt a tyvars with
        | Some id -> Types.Var id
        | None -> err pos "unbound type variable %s" a)
    | SCon (c, args) -> Types.apps (Types.Con c) (List.map go args)
    | SArrow (a, b) -> Types.Arrow (go a, go b)
  in
  go t

type checked = {
  env : Datacon.env;  (** Datatype environment including declarations. *)
  defs : (string * Syntax.var * Syntax.expr) list;
      (** Elaborated top-level definitions, in order. *)
  main : Syntax.expr;  (** The elaborated body of [main]. *)
}

(** Typecheck and elaborate a whole program. The result's [main] is the
    body of the [main] definition with all other definitions in scope
    via [defs]; use {!link} to obtain a single closed expression. *)
let check_program ?(datacons = Datacon.builtins) (prog : program) : checked =
  let denv = ref datacons in
  let env = ref { datacons = !denv; tops = []; locals = [] } in
  let defs = ref [] in
  let main = ref None in
  List.iter
    (fun decl ->
      match decl with
      | DData { name; tyvars; cons; pos } ->
          let ids = List.map (fun v -> (v, Ident.fresh v)) tyvars in
          let cons' =
            List.map
              (fun (cname, fields) ->
                (cname, List.map (sty_to_core pos ids) fields))
              cons
          in
          (try
             denv :=
               Datacon.declare !denv ~name ~tyvars:(List.map snd ids) cons'
           with Datacon.Duplicate d -> err pos "duplicate declaration of %s" d);
          env := { !env with datacons = !denv }
      | DDef { name; params; rhs; pos } ->
          let fn_ty = fresh_tv () in
          let v_placeholder = Syntax.mk_var name Types.unit in
          let rhs_expr =
            if params = [] then rhs else { it = ELam (params, rhs); pos }
          in
          (* Self-recursion: monomorphic binding of the def's own name. *)
          let mono_var = Syntax.mk_var name Types.unit in
          let rec_env =
            { !env with locals = [ (name, (fn_ty, mono_var)) ] }
          in
          let rhs_ty, rhs_l = infer rec_env rhs_expr in
          unify pos fn_ty rhs_ty;
          (* Generalize. *)
          let qtvs = free_tvs fn_ty [] in
          let qids = List.map (fun _ -> Ident.fresh "a") qtvs in
          let z = { quant = List.combine qtvs qids } in
          let mono_core_ty = zonk z fn_ty in
          let poly_ty = Types.foralls qids mono_core_ty in
          let v = { v_placeholder with Syntax.v_ty = poly_ty } in
          let mono_var = { mono_var with Syntax.v_ty = mono_core_ty } in
          let core_rhs_mono = rhs_l z in
          let is_recursive = Syntax.occurs mono_var.v_name core_rhs_mono in
          let core_rhs =
            let inner =
              if is_recursive then
                Syntax.Let
                  (Syntax.Rec [ (mono_var, core_rhs_mono) ], Syntax.Var mono_var)
              else core_rhs_mono
            in
            Syntax.ty_lams qids inner
          in
          let scheme = { q = qtvs; body = fn_ty } in
          env := { !env with tops = (name, (scheme, v, qids)) :: !env.tops };
          defs := (name, v, core_rhs) :: !defs;
          if name = "main" then main := Some (Syntax.Var v))
    prog;
  match !main with
  | None -> raise (Type_error ("program has no 'main' definition", { line = 0; col = 0 }))
  | Some m ->
      { env = !denv; defs = List.rev !defs; main = m }

(** Link a checked program into one closed core expression: nested lets
    around (an instantiation of) [main]. *)
let link (c : checked) : Syntax.expr =
  let body =
    (* main may have been generalized; instantiate residual quantifiers
       at Unit. *)
    match c.main with
    | Syntax.Var v ->
        let qs, _ = Types.split_foralls v.Syntax.v_ty in
        Syntax.ty_apps (Syntax.Var v) (List.map (fun _ -> Types.unit) qs)
    | e -> e
  in
  List.fold_right
    (fun (_, v, rhs) acc -> Syntax.Let (Syntax.NonRec (v, rhs), acc))
    c.defs body

(** Parse, typecheck, elaborate and link in one step. *)
let compile ?(datacons = Datacon.builtins) (src : string) :
    Datacon.env * Syntax.expr =
  let prog = Parser.parse src in
  let c = check_program ~datacons prog in
  (c.env, link c)
