(** The standard prelude: list and arithmetic combinators every surface
    program may use, written in the surface language itself.

    Note the programming style: local tail-recursive loops ([let rec go
    ... in go ...]) exactly as in the paper's [find] example (Sec. 5) —
    these are the bindings contification turns into join points. *)

let source =
  {|
-- Basic combinators ---------------------------------------------------
def id x = x
def const x y = x
def compose f g x = f (g x)
def flip f x y = f y x

def not b = if b then False else True
def even n = n % 2 == 0
def odd n = n % 2 /= 0
def min2 a b = if a <= b then a else b
def max2 a b = if a >= b then a else b
def abs n = if n < 0 then 0 - n else n

def fst p = case p of { (a, b) -> a }
def snd p = case p of { (a, b) -> b }

-- Maybe ---------------------------------------------------------------
def isNothing m = case m of { Nothing -> True; Just x -> False }
def isJust m = case m of { Nothing -> False; Just x -> True }
def fromMaybe d m = case m of { Nothing -> d; Just x -> x }
def mHead xs = case xs of { Nil -> Nothing; Cons x rest -> Just x }

-- Lists ---------------------------------------------------------------
def null xs = isNothing (mHead xs)

def map f xs = case xs of {
  Nil -> Nil;
  Cons x rest -> Cons (f x) (map f rest)
}

def append xs ys = case xs of {
  Nil -> ys;
  Cons x rest -> Cons x (append rest ys)
}

def filter p xs = case xs of {
  Nil -> Nil;
  Cons x rest -> if p x then Cons x (filter p rest) else filter p rest
}

def foldr f z xs = case xs of {
  Nil -> z;
  Cons x rest -> f x (foldr f z rest)
}

def foldl f z xs =
  let rec go acc ys = case ys of {
    Nil -> acc;
    Cons x rest -> go (f acc x) rest
  } in go z xs

def sum xs =
  let rec go acc ys = case ys of {
    Nil -> acc;
    Cons x rest -> go (acc + x) rest
  } in go 0 xs

def product xs =
  let rec go acc ys = case ys of {
    Nil -> acc;
    Cons x rest -> go (acc * x) rest
  } in go 1 xs

def length xs =
  let rec go acc ys = case ys of {
    Nil -> acc;
    Cons x rest -> go (acc + 1) rest
  } in go 0 xs

def enumFromTo lo hi =
  if lo > hi then Nil else Cons lo (enumFromTo (lo + 1) hi)

def replicate n x = if n <= 0 then Nil else Cons x (replicate (n - 1) x)

def take n xs = case xs of {
  Nil -> Nil;
  Cons x rest -> if n <= 0 then Nil else Cons x (take (n - 1) rest)
}

def drop n xs =
  if n <= 0 then xs
  else case xs of { Nil -> Nil; Cons x rest -> drop (n - 1) rest }

def reverse xs =
  let rec go acc ys = case ys of {
    Nil -> acc;
    Cons x rest -> go (Cons x acc) rest
  } in go Nil xs

def zip xs ys = case xs of {
  Nil -> Nil;
  Cons x xrest -> case ys of {
    Nil -> Nil;
    Cons y yrest -> Cons (x, y) (zip xrest yrest)
  }
}

def zipWith f xs ys = case xs of {
  Nil -> Nil;
  Cons x xrest -> case ys of {
    Nil -> Nil;
    Cons y yrest -> Cons (f x y) (zipWith f xrest yrest)
  }
}

def concatMap f xs = case xs of {
  Nil -> Nil;
  Cons x rest -> append (f x) (concatMap f rest)
}

-- Searching: the paper's Sec. 5 example, verbatim style ---------------
def find p xs =
  let rec go ys = case ys of {
    Cons x rest -> if p x then Just x else go rest;
    Nil -> Nothing
  } in go xs

def any p xs = case find p xs of { Just x -> True; Nothing -> False }
def all p xs = not (any (\x -> not (p x)) xs)
def elem x xs = any (\y -> y == x) xs

def lookupList k kvs =
  let rec go ys = case ys of {
    Nil -> Nothing;
    Cons p rest -> case p of { (k2, v) -> if k2 == k then Just v else go rest }
  } in go kvs
|}

(** [compile src]: compile the prelude followed by [src]. *)
let compile ?(datacons = Fj_core.Datacon.builtins) (src : string) =
  Infer.compile ~datacons (source ^ "\n" ^ src)
