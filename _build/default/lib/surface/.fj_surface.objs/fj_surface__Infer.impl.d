lib/surface/infer.ml: Ast Datacon Fj_core Fmt Ident List Literal Parser Primop String Syntax Types
