lib/surface/parser.ml: Ast Fmt Lexer List Option
