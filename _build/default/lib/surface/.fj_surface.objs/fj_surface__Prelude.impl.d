lib/surface/prelude.ml: Fj_core Infer
