lib/surface/ast.ml: Fmt
