lib/surface/lexer.ml: Ast Buffer Fmt List String
