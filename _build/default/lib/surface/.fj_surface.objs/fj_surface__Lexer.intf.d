lib/surface/lexer.mli: Ast Format
