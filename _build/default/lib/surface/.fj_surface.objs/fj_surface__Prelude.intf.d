lib/surface/prelude.mli: Fj_core
