lib/surface/infer.mli: Ast Fj_core
