lib/surface/parser.mli: Ast
