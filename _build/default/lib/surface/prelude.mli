(** The standard prelude, written in the surface language: list and
    arithmetic combinators (map, filter, folds, find/any — the paper's
    Sec. 5 examples verbatim). *)

(** The prelude source text. *)
val source : string

(** Compile the prelude followed by the given program. *)
val compile :
  ?datacons:Fj_core.Datacon.env ->
  string ->
  Fj_core.Datacon.env * Fj_core.Syntax.expr
