(** Recursive-descent parser for the surface language. *)

exception Parse_error of string * Ast.pos

(** Parse a whole program (a sequence of [data] and [def]
    declarations). *)
val parse : string -> Ast.program

(** Parse a single expression (tests / tooling). *)
val parse_expr_string : string -> Ast.expr
