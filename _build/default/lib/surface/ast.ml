(** Abstract syntax of the surface language.

    The surface language plays the role Haskell plays for GHC: a small,
    Hindley–Milner-typed functional language with datatype declarations,
    lambdas, (recursive) lets, case expressions and integer/char/string
    literals. It has {e no} join points and {e no} jumps — join points
    are inferred by contification and created by the simplifier, exactly
    as in the paper.

    Concrete syntax, by example:

    {v
    data Step s a = Done | Yield s a

    def map f xs = case xs of {
      Nil -> Nil;
      Cons x rest -> Cons (f x) (map f rest)
    }

    def main = sum (map (\x -> x * 2) (enumFromTo 1 100))
    v} *)

type pos = { line : int; col : int }

let pp_pos ppf p = Fmt.pf ppf "line %d, column %d" p.line p.col

(** Binary operators (desugared to primops / Bool cases). *)
type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And  (** Short-circuit; desugars to [if]. *)
  | Or  (** Short-circuit; desugars to [if]. *)
  | Cons  (** [x : xs]; desugars to the [Cons] constructor. *)

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Ne -> "/="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"
  | Cons -> ":"

type expr = {
  it : expr_desc;
  pos : pos;
}

and expr_desc =
  | EVar of string  (** Variable or previously-defined function. *)
  | ECon of string  (** Data constructor (possibly partially applied). *)
  | EInt of int
  | EChar of char
  | EStr of string
  | EApp of expr * expr
  | ELam of string list * expr  (** [\x y -> e] *)
  | ELet of { recursive : bool; name : string; params : string list; rhs : expr; body : expr }
      (** [let f x y = rhs in body]; [let rec] for recursion. *)
  | ECase of expr * (pat * expr) list
  | EIf of expr * expr * expr
  | EBinop of binop * expr * expr
  | ENeg of expr  (** Unary minus. *)
  | EList of expr list  (** [[e1, e2, ...]] sugar. *)
  | ETuple of expr * expr  (** [(a, b)] — the [Pair] datatype. *)

and pat =
  | PCon of string * string list  (** [Cons x xs] — flat constructor pattern. *)
  | PInt of int
  | PChar of char
  | PWild  (** [_] *)
  | PTuple of string * string  (** [(a, b)] pattern. *)

(** Surface types, in [data] declarations. *)
type sty =
  | SVar of string  (** type variable *)
  | SCon of string * sty list  (** applied type constructor *)
  | SArrow of sty * sty

type decl =
  | DData of { name : string; tyvars : string list; cons : (string * sty list) list; pos : pos }
  | DDef of { name : string; params : string list; rhs : expr; pos : pos }

type program = decl list
