(** A hand-written lexer for the surface language. *)

type token =
  | INT of int
  | CHAR of char
  | STRING of string
  | LIDENT of string  (** lowercase identifier *)
  | UIDENT of string  (** uppercase identifier (constructor / tycon) *)
  | KW of string  (** keyword: data def let rec in case of if then else *)
  | OP of string  (** operator symbol *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | BACKSLASH
  | ARROW  (** [->] *)
  | EQUALS  (** [=] *)
  | UNDERSCORE
  | EOF

let pp_token ppf = function
  | INT n -> Fmt.pf ppf "integer %d" n
  | CHAR c -> Fmt.pf ppf "character %C" c
  | STRING s -> Fmt.pf ppf "string %S" s
  | LIDENT s | UIDENT s -> Fmt.pf ppf "identifier %s" s
  | KW s -> Fmt.pf ppf "keyword '%s'" s
  | OP s -> Fmt.pf ppf "operator '%s'" s
  | LPAREN -> Fmt.string ppf "'('"
  | RPAREN -> Fmt.string ppf "')'"
  | LBRACE -> Fmt.string ppf "'{'"
  | RBRACE -> Fmt.string ppf "'}'"
  | LBRACKET -> Fmt.string ppf "'['"
  | RBRACKET -> Fmt.string ppf "']'"
  | COMMA -> Fmt.string ppf "','"
  | SEMI -> Fmt.string ppf "';'"
  | BACKSLASH -> Fmt.string ppf "'\\'"
  | ARROW -> Fmt.string ppf "'->'"
  | EQUALS -> Fmt.string ppf "'='"
  | UNDERSCORE -> Fmt.string ppf "'_'"
  | EOF -> Fmt.string ppf "end of input"

exception Lex_error of string * Ast.pos

let keywords = [ "data"; "def"; "let"; "rec"; "in"; "case"; "of"; "if"; "then"; "else" ]

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let is_op_char c = String.contains "+-*/%<>=:&|!" c

(** Tokenise a whole source string; returns tokens with positions. *)
let tokenize (src : string) : (token * Ast.pos) list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and bol = ref 0 in
  let pos i : Ast.pos = { line = !line; col = i - !bol + 1 } in
  let error i msg = raise (Lex_error (msg, pos i)) in
  let emit i t = toks := (t, pos i) :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i;
      bol := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '-' then begin
      (* line comment *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '{' && !i + 1 < n && src.[!i + 1] = '-' then begin
      (* block comment, non-nesting *)
      let start = !i in
      i := !i + 2;
      let rec skip () =
        if !i + 1 >= n then error start "unterminated block comment"
        else if src.[!i] = '-' && src.[!i + 1] = '}' then i := !i + 2
        else begin
          if src.[!i] = '\n' then begin
            incr line;
            bol := !i + 1
          end;
          incr i;
          skip ()
        end
      in
      skip ()
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do
        incr i
      done;
      emit start (INT (int_of_string (String.sub src start (!i - start))))
    end
    else if (c >= 'a' && c <= 'z') || c = '_' then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let s = String.sub src start (!i - start) in
      if s = "_" then emit start UNDERSCORE
      else if List.mem s keywords then emit start (KW s)
      else emit start (LIDENT s)
    end
    else if c >= 'A' && c <= 'Z' then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      emit start (UIDENT (String.sub src start (!i - start)))
    end
    else if c = '\'' then begin
      let start = !i in
      if !i + 2 < n && src.[!i + 1] = '\\' && src.[!i + 3] = '\'' then begin
        let e =
          match src.[!i + 2] with
          | 'n' -> '\n'
          | 't' -> '\t'
          | '\\' -> '\\'
          | '\'' -> '\''
          | c -> c
        in
        emit start (CHAR e);
        i := !i + 4
      end
      else if !i + 2 < n && src.[!i + 2] = '\'' then begin
        emit start (CHAR src.[!i + 1]);
        i := !i + 3
      end
      else error start "bad character literal"
    end
    else if c = '"' then begin
      let start = !i in
      incr i;
      let buf = Buffer.create 16 in
      let rec scan () =
        if !i >= n then error start "unterminated string literal"
        else
          match src.[!i] with
          | '"' -> incr i
          | '\\' when !i + 1 < n ->
              let e =
                match src.[!i + 1] with
                | 'n' -> '\n'
                | 't' -> '\t'
                | c -> c
              in
              Buffer.add_char buf e;
              i := !i + 2;
              scan ()
          | c ->
              Buffer.add_char buf c;
              incr i;
              scan ()
      in
      scan ();
      emit start (STRING (Buffer.contents buf))
    end
    else
      match c with
      | '(' -> emit !i LPAREN; incr i
      | ')' -> emit !i RPAREN; incr i
      | '{' -> emit !i LBRACE; incr i
      | '}' -> emit !i RBRACE; incr i
      | '[' -> emit !i LBRACKET; incr i
      | ']' -> emit !i RBRACKET; incr i
      | ',' -> emit !i COMMA; incr i
      | ';' -> emit !i SEMI; incr i
      | '\\' -> emit !i BACKSLASH; incr i
      | _ when is_op_char c ->
          let start = !i in
          while !i < n && is_op_char src.[!i] do
            incr i
          done;
          let s = String.sub src start (!i - start) in
          (match s with
          | "->" -> emit start ARROW
          | "=" -> emit start EQUALS
          | _ -> emit start (OP s))
      | _ -> error !i (Fmt.str "unexpected character %C" c)
  done;
  emit (n - 1) EOF;
  List.rev !toks
