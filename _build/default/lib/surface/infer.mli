(** Hindley–Milner inference and elaboration to System F_J: top-level
    defs are generalized into [/\a] binders; occurrences become type
    applications; local lets are monomorphic. The output contains no
    join points — those are inferred later by contification. *)

exception Type_error of string * Ast.pos

type checked = {
  env : Fj_core.Datacon.env;
  defs : (string * Fj_core.Syntax.var * Fj_core.Syntax.expr) list;
  main : Fj_core.Syntax.expr;
}

(** Typecheck and elaborate a parsed program (requires a [main]). *)
val check_program : ?datacons:Fj_core.Datacon.env -> Ast.program -> checked

(** Link into one closed core expression (lets around [main]). *)
val link : checked -> Fj_core.Syntax.expr

(** Parse + check + link. Returns the datatype environment (including
    source [data] declarations) and the closed program. *)
val compile :
  ?datacons:Fj_core.Datacon.env ->
  string ->
  Fj_core.Datacon.env * Fj_core.Syntax.expr
