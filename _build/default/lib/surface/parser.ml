(** Recursive-descent parser for the surface language.

    Grammar (informal; literal tokens quoted with single quotes):

    {v
    program := decl*
    decl    := 'data' UIDENT lident* '=' condecl ('|' condecl)*
             | 'def' lident lident* '=' expr
    condecl := UIDENT tyatom*
    ty      := tyapp ('->' ty)?
    tyapp   := tyatom+
    tyatom  := lident | UIDENT | '(' ty ')'
    expr    := backslash lident+ '->' expr
             | 'let' ['rec'] lident lident* '=' expr 'in' expr
             | 'case' expr 'of' lbrace alt (';' alt)* [';'] rbrace
             | 'if' expr 'then' expr 'else' expr
             | opexpr
    alt     := pat '->' expr
    pat     := UIDENT lident* | INT | CHAR | '_' | '(' lident ',' lident ')'
    opexpr  := operator precedence over apps, loosest first:
               or, and, comparisons, cons (right), additive,
               multiplicative, application
    atom    := INT | CHAR | STRING | lident | UIDENT | '(' expr ')'
             | '(' expr ',' expr ')' | list brackets
    v} *)

open Ast
open Lexer

exception Parse_error of string * pos

type state = { mutable toks : (token * pos) list }

let peek st = match st.toks with [] -> (EOF, { line = 0; col = 0 }) | t :: _ -> t
let pos_of st = snd (peek st)
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let error st fmt =
  Fmt.kstr (fun m -> raise (Parse_error (m, pos_of st))) fmt

let expect st tok what =
  let t, _ = peek st in
  if t = tok then advance st
  else error st "expected %s, found %a" what pp_token t

let lident st =
  match peek st with
  | LIDENT s, _ ->
      advance st;
      s
  | t, _ -> error st "expected an identifier, found %a" pp_token t

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let rec parse_ty st : sty =
  let lhs = parse_tyapp st in
  match peek st with
  | ARROW, _ ->
      advance st;
      SArrow (lhs, parse_ty st)
  | _ -> lhs

and parse_tyapp st : sty =
  let head = parse_tyatom st in
  let rec args acc =
    match peek st with
    | (LIDENT _ | UIDENT _ | LPAREN), _ -> args (parse_tyatom st :: acc)
    | _ -> List.rev acc
  in
  let args = args [] in
  match (head, args) with
  | _, [] -> head
  | SCon (c, []), args -> SCon (c, args)
  | _ -> error st "type variables cannot be applied"

and parse_tyatom st : sty =
  match peek st with
  | LIDENT s, _ ->
      advance st;
      SVar s
  | UIDENT s, _ ->
      advance st;
      SCon (s, [])
  | LPAREN, _ ->
      advance st;
      let t = parse_ty st in
      expect st RPAREN "')'";
      t
  | t, _ -> error st "expected a type, found %a" pp_token t

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let mk pos it : expr = { it; pos }

let rec parse_expr st : expr =
  let p = pos_of st in
  match peek st with
  | BACKSLASH, _ ->
      advance st;
      let params = parse_params st in
      if params = [] then error st "lambda needs at least one parameter";
      expect st ARROW "'->'";
      mk p (ELam (params, parse_expr st))
  | KW "let", _ ->
      advance st;
      let recursive =
        match peek st with
        | KW "rec", _ ->
            advance st;
            true
        | _ -> false
      in
      let name = lident st in
      let params = parse_params st in
      expect st EQUALS "'='";
      let rhs = parse_expr st in
      expect st (KW "in") "'in'";
      let body = parse_expr st in
      mk p (ELet { recursive; name; params; rhs; body })
  | KW "case", _ ->
      advance st;
      let scrut = parse_expr st in
      expect st (KW "of") "'of'";
      expect st LBRACE "'{'";
      let alts = parse_alts st in
      expect st RBRACE "'}'";
      mk p (ECase (scrut, alts))
  | KW "if", _ ->
      advance st;
      let c = parse_expr st in
      expect st (KW "then") "'then'";
      let t = parse_expr st in
      expect st (KW "else") "'else'";
      let e = parse_expr st in
      mk p (EIf (c, t, e))
  | _ -> parse_or st

and parse_params st =
  let rec go acc =
    match peek st with
    | LIDENT s, _ ->
        advance st;
        go (s :: acc)
    | UNDERSCORE, _ ->
        advance st;
        go ("_" :: acc)
    | _ -> List.rev acc
  in
  go []

and parse_alts st =
  let alt () =
    let pat = parse_pat st in
    expect st ARROW "'->'";
    let rhs = parse_expr st in
    (pat, rhs)
  in
  let rec more acc =
    match peek st with
    | SEMI, _ -> (
        advance st;
        match peek st with
        | RBRACE, _ -> List.rev acc
        | _ -> more (alt () :: acc))
    | _ -> List.rev acc
  in
  more [ alt () ]

and parse_pat st : pat =
  match peek st with
  | UIDENT s, _ ->
      advance st;
      PCon (s, parse_params st)
  | INT n, _ ->
      advance st;
      PInt n
  | CHAR c, _ ->
      advance st;
      PChar c
  | UNDERSCORE, _ ->
      advance st;
      PWild
  | OP "-", _ ->
      advance st;
      (match peek st with
      | INT n, _ ->
          advance st;
          PInt (-n)
      | t, _ -> error st "expected an integer after '-', found %a" pp_token t)
  | LPAREN, _ ->
      advance st;
      let a = lident st in
      expect st COMMA "','";
      let b = lident st in
      expect st RPAREN "')'";
      PTuple (a, b)
  | t, _ -> error st "expected a pattern, found %a" pp_token t

(* Operator precedence, loosest first. *)
and parse_or st =
  let lhs = parse_and st in
  match peek st with
  | OP "||", p ->
      advance st;
      mk p (EBinop (Or, lhs, parse_or st))
  | _ -> lhs

and parse_and st =
  let lhs = parse_cmp st in
  match peek st with
  | OP "&&", p ->
      advance st;
      mk p (EBinop (And, lhs, parse_and st))
  | _ -> lhs

and parse_cmp st =
  let lhs = parse_cons st in
  let op name =
    match name with
    | "==" -> Some Eq
    | "/=" -> Some Ne
    | "<" -> Some Lt
    | "<=" -> Some Le
    | ">" -> Some Gt
    | ">=" -> Some Ge
    | _ -> None
  in
  match peek st with
  | OP s, p when op s <> None ->
      advance st;
      let rhs = parse_cons st in
      mk p (EBinop (Option.get (op s), lhs, rhs))
  | _ -> lhs

and parse_cons st =
  let lhs = parse_additive st in
  match peek st with
  | OP ":", p ->
      advance st;
      mk p (EBinop (Cons, lhs, parse_cons st))
  | _ -> lhs

and parse_additive st =
  let rec go lhs =
    match peek st with
    | OP "+", p ->
        advance st;
        go (mk p (EBinop (Add, lhs, parse_multiplicative st)))
    | OP "-", p ->
        advance st;
        go (mk p (EBinop (Sub, lhs, parse_multiplicative st)))
    | _ -> lhs
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let rec go lhs =
    match peek st with
    | OP "*", p ->
        advance st;
        go (mk p (EBinop (Mul, lhs, parse_app st)))
    | OP "/", p ->
        advance st;
        go (mk p (EBinop (Div, lhs, parse_app st)))
    | OP "%", p ->
        advance st;
        go (mk p (EBinop (Mod, lhs, parse_app st)))
    | _ -> lhs
  in
  go (parse_app st)

and parse_app st =
  (* unary minus *)
  match peek st with
  | OP "-", p ->
      advance st;
      mk p (ENeg (parse_app st))
  | _ ->
      let head = parse_atom st in
      let rec go acc =
        match peek st with
        | (INT _ | CHAR _ | STRING _ | LIDENT _ | UIDENT _ | LPAREN | LBRACKET), p
          ->
            let arg = parse_atom st in
            go (mk p (EApp (acc, arg)))
        | _ -> acc
      in
      go head

and parse_atom st : expr =
  let p = pos_of st in
  match peek st with
  | INT n, _ ->
      advance st;
      mk p (EInt n)
  | CHAR c, _ ->
      advance st;
      mk p (EChar c)
  | STRING s, _ ->
      advance st;
      mk p (EStr s)
  | LIDENT s, _ ->
      advance st;
      mk p (EVar s)
  | UIDENT s, _ ->
      advance st;
      mk p (ECon s)
  | LBRACKET, _ ->
      advance st;
      let rec elems acc =
        match peek st with
        | RBRACKET, _ ->
            advance st;
            List.rev acc
        | COMMA, _ ->
            advance st;
            elems (parse_expr st :: acc)
        | _ when acc = [] -> elems (parse_expr st :: acc)
        | t, _ -> error st "expected ',' or ']', found %a" pp_token (t)
      in
      mk p (EList (elems []))
  | LPAREN, _ -> (
      advance st;
      let e = parse_expr st in
      match peek st with
      | COMMA, _ ->
          advance st;
          let e2 = parse_expr st in
          expect st RPAREN "')'";
          mk p (ETuple (e, e2))
      | RPAREN, _ ->
          advance st;
          e
      | t, _ -> error st "expected ')' or ',', found %a" pp_token t)
  | t, _ -> error st "expected an expression, found %a" pp_token t

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let parse_decl st : decl =
  let p = pos_of st in
  match peek st with
  | KW "data", _ ->
      advance st;
      let name =
        match peek st with
        | UIDENT s, _ ->
            advance st;
            s
        | t, _ -> error st "expected a type name, found %a" pp_token t
      in
      let tyvars = parse_params st in
      expect st EQUALS "'='";
      let condecl () =
        match peek st with
        | UIDENT s, _ ->
            advance st;
            let rec fields acc =
              match peek st with
              | (LIDENT _ | UIDENT _ | LPAREN), _ ->
                  fields (parse_tyatom st :: acc)
              | _ -> List.rev acc
            in
            (s, fields [])
        | t, _ -> error st "expected a constructor, found %a" pp_token t
      in
      let rec cons acc =
        match peek st with
        | OP "|", _ ->
            advance st;
            cons (condecl () :: acc)
        | _ -> List.rev acc
      in
      DData { name; tyvars; cons = cons [ condecl () ]; pos = p }
  | KW "def", _ ->
      advance st;
      let name = lident st in
      let params = parse_params st in
      expect st EQUALS "'='";
      let rhs = parse_expr st in
      DDef { name; params; rhs; pos = p }
  | t, _ -> error st "expected 'data' or 'def', found %a" pp_token t

(** Parse a whole program. *)
let parse (src : string) : program =
  let st = { toks = Lexer.tokenize src } in
  let rec go acc =
    match peek st with
    | EOF, _ -> List.rev acc
    | SEMI, _ ->
        advance st;
        go acc
    | _ -> go (parse_decl st :: acc)
  in
  go []

(** Parse a single expression (for tests and the REPL-ish driver). *)
let parse_expr_string (src : string) : expr =
  let st = { toks = Lexer.tokenize src } in
  let e = parse_expr st in
  (match peek st with
  | EOF, _ -> ()
  | t, _ -> error st "trailing input: %a" pp_token t);
  e
