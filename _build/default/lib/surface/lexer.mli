(** Hand-written lexer for the surface language. *)

type token =
  | INT of int
  | CHAR of char
  | STRING of string
  | LIDENT of string
  | UIDENT of string
  | KW of string
  | OP of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | BACKSLASH
  | ARROW
  | EQUALS
  | UNDERSCORE
  | EOF

val pp_token : Format.formatter -> token -> unit

exception Lex_error of string * Ast.pos

(** Tokenise a whole source string (comments and whitespace skipped);
    always ends with [EOF]. *)
val tokenize : string -> (token * Ast.pos) list
