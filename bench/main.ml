(** The benchmark harness: regenerates every table/figure-shaped result
    in the paper's evaluation (see DESIGN.md, per-experiment index).

    - {b Table 1}: allocation deltas, baseline vs join points, on the
      NoFib-analogue suites (spectral / real / shootout), with
      min / max / geometric mean per suite exactly as the paper
      reports.
    - {b Sec. 5}: the stream-fusion ablation — skipless vs skip-ful vs
      plain lists, under both compilers.
    - {b Sec. 3}: the codegen claim on the block machine — gotos vs
      calls vs heap allocation for the same program under both
      compilers, cross-checked metric by metric against the Fig. 3
      machine (both fill the same {!Fj_core.Mstats} shape).
    - {b Sec. 2}: the commuting-conversion ablation (join points vs no
      case-of-case at all).
    - {b Bechamel} wall-clock benches: evaluator throughput on the
      optimised output of each compiler, plus optimiser throughput.

    Failures (lint errors, result mismatches) do {e not} abort the
    suite: they are collected, the remaining programs still run, and
    the harness reports everything at the end with a nonzero exit.

    Run: [dune exec bench/main.exe] (add [--quick] to skip bechamel;
    [--json PATH] additionally writes the machine-readable trajectory
    file, e.g. [BENCH_2026-08.json] — see EXPERIMENTS.md;
    [--warmup N] / [--samples N] control the wall-clock measurement
    discipline, stamped into the JSON alongside the git commit). *)

open Fj_core

(* ------------------------------------------------------------------ *)
(* Failure collection                                                  *)
(* ------------------------------------------------------------------ *)

(* The satellite fix for "exit 1 on the first lint failure": every
   check records here and the suite keeps going; [report_failures]
   decides the exit code once everything has run. *)
let failures : string list ref = ref []

let fail fmt =
  Fmt.kstr
    (fun m ->
      Fmt.epr "BENCH FAILURE: %s@." m;
      failures := m :: !failures)
    fmt

let check_tree ~what expected got =
  match Eval.tree_mismatch expected got with
  | None -> true
  | Some where ->
      fail "%s: result mismatch (%s)" what where;
      false

(* Raised (after recording the failure) when a row cannot be measured;
   callers drop the row and move on. *)
exception Skip_row

(* Every evaluation is fuel-bounded through the reified outcome API: a
   program miscompiled into divergence — or a stuck machine — records
   a failure and skips its row instead of wedging the whole suite. *)
let bench_fuel = 100_000_000

let run_bounded ~what e =
  match Eval.run_outcome ~fuel:bench_fuel e with
  | Eval.Finished (t, s) -> (t, s)
  | Eval.Fuel_exhausted ->
      fail "%s: out of fuel after %d machine steps" what bench_fuel;
      raise Skip_row
  | Eval.Crashed m ->
      fail "%s: evaluation stuck: %s" what m;
      raise Skip_row

(* ------------------------------------------------------------------ *)
(* Wall-clock rigor                                                    *)
(* ------------------------------------------------------------------ *)

(* Evaluator wall-clock is measured as [timing_warmup] discarded
   iterations followed by [timing_samples] measured ones (monotonic
   clock); the JSON reports exact median and p95 over the sorted
   samples, not single-shot numbers. Overridable with [--warmup N] /
   [--samples N]; the chosen counts are stamped into the JSON so a
   diff of two snapshots knows how trustworthy each side's medians
   are. *)
let timing_warmup = ref 1
let timing_samples = ref 5

let timed_samples f =
  for _ = 1 to !timing_warmup do
    ignore (f ())
  done;
  List.init !timing_samples (fun _ ->
      let t0 = Telemetry.now_ms () in
      ignore (f ());
      Telemetry.now_ms () -. t0)

(* Exact rank-[ceil (q * n)] percentile of the sorted samples. *)
let percentile q samples =
  match List.sort compare samples with
  | [] -> 0.0
  | sorted ->
      let n = List.length sorted in
      let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
      List.nth sorted (max 0 (min (n - 1) (rank - 1)))

let median = percentile 0.5

let report_failures () =
  match List.rev !failures with
  | [] -> 0
  | fs ->
      Fmt.epr "@.%s@." (String.make 64 '=');
      Fmt.epr "%d benchmark failure(s):@." (List.length fs);
      List.iteri (fun i m -> Fmt.epr "  %2d. %s@." (i + 1) m) fs;
      1

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

type measurement = {
  prog : Bench_programs.program;
  base_words : int;
  join_words : int;
  base_steps : int;
  join_steps : int;
  base_jumps : int;
  join_jumps : int;
  delta_pct : float;  (** (join - base) / base * 100, the Table 1 metric. *)
  base_report : Pipeline.report;  (** Optimizer telemetry, baseline. *)
  join_report : Pipeline.report;  (** Optimizer telemetry, join points. *)
  base_eval_ms : float list;  (** Measured eval wall-clock samples. *)
  join_eval_ms : float list;
  analysis_errors : int;  (** {!Absint.verify} errors on the input. *)
  analysis_missed : int;
      (** Missed-optimization diagnostics on the join-points output. *)
  analysis_iters : int;  (** Fixpoint rounds of the missed-opt scan. *)
}

let opt_config mode denv =
  Pipeline.default_config ~mode ~datacons:denv ~inline_threshold:300 ()

(* Every compile the harness performs feeds one optimization coverage
   map ({!Coverage}); its summary lands in the BENCH_*.json trajectory
   so a shrinking bench corpus (or a pass that stops firing) is visible
   in the record. *)
let coverage = Coverage.create ()

let optimize_report mode denv core =
  let e, r = Pipeline.run_report (opt_config mode denv) core in
  Coverage.observe_report coverage r;
  (e, r)

let optimize mode denv core = fst (optimize_report mode denv core)

(* Pull the few headline numbers out of a pipeline trace. *)
let report_ms r =
  List.fold_left
    (fun acc (p : Pipeline.pass_record) -> acc +. p.duration_ms)
    0.0 (Pipeline.passes r)

let measure (prog : Bench_programs.program) : measurement option =
  let denv, core = Bench_programs.compile prog in
  match Lint.lint_result denv core with
  | Error err ->
      fail "%s does not lint: %a" prog.name Lint.pp_error err;
      None
  | Ok _ -> (
      try
      let run e = run_bounded ~what:prog.name e in
      let t0, _ = run core in
      let base, base_report = optimize_report Pipeline.Baseline denv core in
      let joins, join_report =
        optimize_report Pipeline.Join_points denv core
      in
      let tb, sb = run base in
      let tj, sj = run joins in
      ignore (check_tree ~what:(prog.name ^ " (baseline)") t0 tb);
      ignore (check_tree ~what:(prog.name ^ " (join-points)") t0 tj);
      let base_eval_ms = timed_samples (fun () -> run base) in
      let join_eval_ms = timed_samples (fun () -> run joins) in
      (* The static-analysis row of the trajectory: discipline errors
         on the input (always 0 on a healthy corpus), missed-opt
         findings surviving the join-points pipeline, and the
         fixpoint cost of proving them. *)
      let analysis_errors =
        List.length (List.filter Diagnostic.is_error (Absint.verify core))
      in
      let analysis_missed, analysis_iters =
        let ds, iters =
          Absint.missed ~decisions:(Pipeline.decisions join_report) joins
        in
        (List.length ds, iters)
      in
      let delta_pct =
        if sb.words = 0 then 0.0
        else
          float_of_int (sj.words - sb.words)
          /. float_of_int sb.words *. 100.0
      in
      Some
        {
          prog;
          base_words = sb.words;
          join_words = sj.words;
          base_steps = sb.steps;
          join_steps = sj.steps;
          base_jumps = sb.jumps;
          join_jumps = sj.jumps;
          delta_pct;
          base_report;
          join_report;
          base_eval_ms;
          join_eval_ms;
          analysis_errors;
          analysis_missed;
          analysis_iters;
        }
      with Skip_row -> None)

let geomean deltas =
  (* Geometric mean of the ratios (as the paper's "Geo. Mean" row);
     -100% rows make the geomean degenerate, which the paper marks
     "n/a". *)
  if List.exists (fun d -> d <= -100.0) deltas then None
  else
    let logs =
      List.map (fun d -> Float.log ((100.0 +. d) /. 100.0)) deltas
    in
    let n = List.length logs in
    if n = 0 then None
    else
      Some
        ((Float.exp (List.fold_left ( +. ) 0.0 logs /. float_of_int n) -. 1.0)
        *. 100.0)

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let pp_delta ppf d =
  if d > 0.0 then Fmt.pf ppf "+%.1f%%" d else Fmt.pf ppf "%.1f%%" d

let table1_group (group : string) (progs : Bench_programs.program list) =
  Fmt.pr "@.%s@." (String.make 64 '-');
  Fmt.pr "Table 1 / %-10s %14s %12s %10s@." group "base words" "join words"
    "Allocs";
  Fmt.pr "%s@." (String.make 64 '-');
  let ms = List.filter_map measure progs in
  List.iter
    (fun m ->
      Fmt.pr "%-22s %14d %12d %a@." m.prog.name m.base_words m.join_words
        pp_delta m.delta_pct)
    ms;
  let deltas = List.map (fun m -> m.delta_pct) ms in
  let mn = List.fold_left Float.min infinity deltas in
  let mx = List.fold_left Float.max neg_infinity deltas in
  Fmt.pr "%s@." (String.make 64 '-');
  Fmt.pr "%-22s %a@." "Min" pp_delta mn;
  Fmt.pr "%-22s %a@." "Max" pp_delta mx;
  (match geomean deltas with
  | Some g -> Fmt.pr "%-22s %a@." "Geo. Mean" pp_delta g
  | None -> Fmt.pr "%-22s %38s@." "Geo. Mean" "n/a");
  ms

(* The optimizer-side telemetry behind Table 1: how long each pipeline
   ran and how much rewriting it did (whole-run tick totals). *)
let telemetry_table (ms : measurement list) =
  Fmt.pr "@.%s@." (String.make 76 '-');
  Fmt.pr "Optimizer telemetry %18s %10s %8s %8s %8s@." "base ms" "join ms"
    "ticks" "contify" "c-o-c";
  Fmt.pr "%s@." (String.make 76 '-');
  List.iter
    (fun m ->
      Fmt.pr "%-22s %15.2f %10.2f %8d %8d %8d@." m.prog.name
        (report_ms m.base_report) (report_ms m.join_report)
        (Pipeline.total_ticks m.join_report)
        (Pipeline.contified m.join_report)
        (try List.assoc "case_of_case" (Pipeline.ticks m.join_report)
         with Not_found -> 0))
    ms

(* Eval wall-clock, warmup + measured samples (see [timed_samples]);
   single-shot timings on sub-millisecond programs are mostly noise,
   so the table shows median and p95 of the measured iterations. *)
let timing_table (ms : measurement list) =
  Fmt.pr "@.%s@." (String.make 76 '-');
  Fmt.pr "Eval wall-clock ms (%d warmup + %d measured) %9s %8s %9s %8s@."
    !timing_warmup !timing_samples "base p50" "p95" "join p50" "p95";
  Fmt.pr "%s@." (String.make 76 '-');
  List.iter
    (fun m ->
      Fmt.pr "%-40s %9.3f %8.3f %9.3f %8.3f@." m.prog.name
        (median m.base_eval_ms)
        (percentile 0.95 m.base_eval_ms)
        (median m.join_eval_ms)
        (percentile 0.95 m.join_eval_ms))
    ms

(* The decision ledger behind the ticks: how many rewrites each
   pipeline accepted vs refused, and the dominant refusal. A shift in
   a program's rejection profile (e.g. inline_too_big suddenly
   dominating) is an optimizer regression the allocation columns may
   not show yet — the counts land in BENCH_*.json via
   [Pipeline.summary_json]. *)
let decision_table (ms : measurement list) =
  Fmt.pr "@.%s@." (String.make 76 '-');
  Fmt.pr "Optimizer decisions %12s %12s   %s@." "base f/r" "join f/r"
    "top join rejection";
  Fmt.pr "%s@." (String.make 76 '-');
  List.iter
    (fun m ->
      let cell r =
        let ds = Pipeline.decisions r in
        Fmt.str "%d/%d" (Decision.fired ds) (Decision.rejected ds)
      in
      let top =
        match
          List.sort
            (fun (_, a) (_, b) -> compare b a)
            (Decision.reason_counts (Pipeline.decisions m.join_report))
        with
        | [] -> "-"
        | (name, n) :: _ -> Fmt.str "%s (%d)" name n
      in
      Fmt.pr "%-22s %9s %12s   %s@." m.prog.name (cell m.base_report)
        (cell m.join_report) top)
    ms

(* ------------------------------------------------------------------ *)
(* Sec. 5: stream fusion ablation                                      *)
(* ------------------------------------------------------------------ *)

let fusion_row name src =
  try
    let denv, core = Fj_fusion.Streams.compile_pipeline src in
    let t0, _ = run_bounded ~what:(Fmt.str "fusion %s" name) core in
    let cell mode =
      let e = optimize mode denv core in
      let what = Fmt.str "fusion %s (%s)" name (Pipeline.mode_name mode) in
      let t, s = run_bounded ~what e in
      ignore (check_tree ~what t0 t);
      s.Eval.words
    in
    let b = cell Pipeline.Baseline in
    let j = cell Pipeline.Join_points in
    Fmt.pr "%-34s %12d %12d %a@." name b j pp_delta
      (if b = 0 then 0.0 else float_of_int (j - b) /. float_of_int b *. 100.0)
  with Skip_row -> ()

let fusion_table n =
  Fmt.pr "@.%s@." (String.make 72 '-');
  Fmt.pr
    "Stream fusion (Sec. 5), n=%d        base words   join words     Allocs@."
    n;
  Fmt.pr "%s@." (String.make 72 '-');
  let open Fj_fusion.Streams in
  fusion_row "sum.map.filter  skipless" (sum_map_filter_skipless n);
  fusion_row "sum.map.filter  skip-ful" (sum_map_filter_skipful n);
  fusion_row "sum.map.filter  lists" (sum_map_filter_lists n);
  fusion_row "dot-product     skipless" (dot_product_skipless n);
  fusion_row "dot-product     skip-ful" (dot_product_skipful n);
  fusion_row "double-filter   skipless" (double_filter_skipless n);
  fusion_row "double-filter   skip-ful" (double_filter_skipful n)

(* ------------------------------------------------------------------ *)
(* Sec. 3: block machine codegen                                       *)
(* ------------------------------------------------------------------ *)

(* One program under one mode, run on {e both} machines. The two
   executors fill the same {!Mstats} record, so each metric lines up
   column for column: the block machine's jumps are lowered F_J jumps,
   its calls went through closures the baseline had to allocate, etc. *)
let machine_rows name denv core t0 mode =
  let what = Fmt.str "block machine %s (%s)" name (Pipeline.mode_name mode) in
  let e = optimize mode denv core in
  let _, es = run_bounded ~what e in
  let prog = Fj_machine.Lower.lower_program e in
  let v, s =
    match Fj_machine.Bmachine.run ~fuel:bench_fuel prog with
    | v, s -> (v, s)
    | exception Fj_machine.Bmachine.Out_of_fuel ->
        fail "%s: block machine out of fuel" what;
        raise Skip_row
    | exception Fj_machine.Bmachine.Stuck m ->
        fail "%s: block machine stuck: %s" what m;
        raise Skip_row
  in
  ignore (check_tree ~what t0 (Fj_machine.Bmachine.tree_of_value v));
  let row machine (s : Mstats.t) =
    Fmt.pr "%-28s %-12s %-6s %8d %8d %8d %8d %6d@." name
      (Pipeline.mode_name mode) machine s.words s.jumps s.calls s.steps
      s.max_stack
  in
  row "block" s;
  row "fig3" es

let machine_table () =
  Fmt.pr "@.%s@." (String.make 88 '-');
  Fmt.pr
    "Block machine vs Fig. 3 (Sec. 3)                     words    jumps    \
     calls    steps  stack@.";
  Fmt.pr "%s@." (String.make 88 '-');
  let check name src =
    try
      let denv, core = Fj_fusion.Streams.compile_pipeline src in
      let t0, _ = run_bounded ~what:name core in
      machine_rows name denv core t0 Pipeline.Baseline;
      machine_rows name denv core t0 Pipeline.Join_points
    with Skip_row -> ()
  in
  check "skipless pipeline n=200"
    (Fj_fusion.Streams.sum_map_filter_skipless 200);
  check "double-filter n=200" (Fj_fusion.Streams.double_filter_skipless 200)

(* ------------------------------------------------------------------ *)
(* Sec. 2: commuting conversions ablation                               *)
(* ------------------------------------------------------------------ *)

let cc_ablation () =
  Fmt.pr "@.%s@." (String.make 72 '-');
  Fmt.pr
    "Commuting conversions ablation (Sec. 2)   join-points   no-case-of-case@.";
  Fmt.pr "%s@." (String.make 72 '-');
  List.iter
    (fun (prog : Bench_programs.program) ->
      try
        let denv, core = Bench_programs.compile prog in
        let t0, _ = run_bounded ~what:prog.name core in
        let words mode =
          let e = optimize mode denv core in
          let what =
            Fmt.str "cc-ablation %s (%s)" prog.name (Pipeline.mode_name mode)
          in
          let t, s = run_bounded ~what e in
          ignore (check_tree ~what t0 t);
          s.Eval.words
        in
        Fmt.pr "%-36s %13d %17d@." prog.name
          (words Pipeline.Join_points)
          (words Pipeline.No_cc)
      with Skip_row -> ())
    [ Bench_programs.k_nucleotide; Bench_programs.n_body; Bench_programs.transform ]

(* ------------------------------------------------------------------ *)
(* Sec. 8: direct style vs CPS                                          *)
(* ------------------------------------------------------------------ *)

let cps_table () =
  Fmt.pr "@.%s@." (String.make 72 '-');
  Fmt.pr "Direct style vs CPS (Sec. 8)@.";
  Fmt.pr "%s@." (String.make 72 '-');
  (* The paper's CSE example, closed over concrete f and g. *)
  let module B = Builder in
  let i2i = Types.Arrow (Types.int, Types.int) in
  let prog =
    B.app
      (B.app
         (B.lam "f" (Types.arrows [ Types.int; Types.int ] Types.int)
            (fun f ->
              B.lam "g" i2i (fun g ->
                  B.let_ "a" (B.app g (B.int 7)) (fun a ->
                      B.app2 f a (B.app g (B.int 7))))))
         (B.lam "p" Types.int (fun p ->
              B.lam "q" Types.int (fun q -> B.add p q))))
      (B.lam "y" Types.int (fun y -> B.mul y y))
  in
  let shared e = snd (Cse.run_counted e) in
  let cpsd = Cps.transform prog in
  Fmt.pr "%-44s %10s %10s@." "f (g x) (g x), CSE opportunities found"
    "direct" "CPS";
  Fmt.pr "%-44s %10d %10d@." "" (shared prog) (shared cpsd);
  Fmt.pr "%-44s %10d %10d@." "syntactic lambdas" (Cps.count_lams prog)
    (Cps.count_lams cpsd);
  Fmt.pr "%-44s %10d %10d@." "term size" (Syntax.size prog)
    (Syntax.size cpsd)

(* ------------------------------------------------------------------ *)
(* The BENCH_*.json trajectory file                                    *)
(* ------------------------------------------------------------------ *)

(* The commit the snapshot was taken at, for the "commit" provenance
   field; None outside a git checkout (or without git on PATH). *)
let git_commit () =
  match Unix.open_process_in "git rev-parse HEAD 2>/dev/null" with
  | exception _ -> None
  | ic -> (
      let line = try Some (input_line ic) with End_of_file -> None in
      match (Unix.close_process_in ic, line) with
      | Unix.WEXITED 0, Some c when String.length c >= 7 -> Some c
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Compile service: batch throughput and cache hit rate                *)
(* ------------------------------------------------------------------ *)

module Service = Fj_service.Service
module Svc_cache = Fj_service.Cache

type service_run = { sr_jobs : int; sr_wall_ms : float; sr_per_sec : float }

type service_result = {
  sv_programs : int;
  sv_runs : service_run list;  (** No cache, --jobs 1/2/4. *)
  sv_cold : Svc_cache.stats;
  sv_warm : Svc_cache.stats;
  sv_warm_hit_rate : float;
  sv_cold_wall_ms : float;
  sv_warm_wall_ms : float;
}

(* Write the bench corpus out as .fj files (the service compiles
   files, not in-memory sources) under a fresh scratch directory. *)
let service_sources () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fj-bench-service.%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  List.map
    (fun (pr : Bench_programs.program) ->
      let path = Filename.concat dir (pr.Bench_programs.name ^ ".fj") in
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          if pr.Bench_programs.uses_streams then begin
            output_string oc Fj_fusion.Streams.source;
            output_char oc '\n'
          end;
          output_string oc pr.Bench_programs.source);
      (pr.Bench_programs.name, path))
    (Bench_programs.spectral @ Bench_programs.real @ Bench_programs.shootout)

let service_batch ?cache ~jobs sources =
  let cfg =
    { (Service.default_config ()) with Service.jobs; cache }
  in
  let b = Service.run_batch cfg sources in
  List.iter
    (fun (o : Service.outcome) ->
      match o.Service.status with
      | Service.Compiled _ -> ()
      | st ->
          fail "service batch: %s ended %s" o.Service.id
            (Service.status_name st))
    b.Service.b_outcomes;
  b

let service_table () =
  let sources = service_sources () in
  let n = List.length sources in
  Fmt.pr "@.%s@." (String.make 64 '-');
  Fmt.pr "Compile service: batch throughput (%d programs)@." n;
  Fmt.pr "%s@." (String.make 64 '-');
  let runs =
    List.map
      (fun jobs ->
        let b = service_batch ~jobs sources in
        let per_sec =
          if b.Service.b_wall_ms > 0.0 then
            float_of_int n /. (b.Service.b_wall_ms /. 1000.0)
          else 0.0
        in
        Fmt.pr "--jobs %d %24.0f ms %17.1f programs/s@." jobs
          b.Service.b_wall_ms per_sec;
        { sr_jobs = jobs; sr_wall_ms = b.Service.b_wall_ms; sr_per_sec = per_sec })
      [ 1; 2; 4 ]
  in
  (* Cold, then warm, against the same on-disk cache: the warm run
     must replay from the cache (hit rate is the headline number). *)
  let cache_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fj-bench-cache.%d" (Unix.getpid ()))
  in
  let cold_cache = Svc_cache.create ~dir:cache_dir () in
  let cold = service_batch ~cache:cold_cache ~jobs:1 sources in
  let warm_cache = Svc_cache.create ~dir:cache_dir () in
  let warm = service_batch ~cache:warm_cache ~jobs:1 sources in
  let hit_rate = Svc_cache.hit_rate warm_cache in
  if hit_rate <= 0.5 then
    fail "service cache: warm hit rate %.0f%% (want > 50%%)"
      (100.0 *. hit_rate);
  Fmt.pr "cache cold (--jobs 1) %12.0f ms %17d store(s)@."
    cold.Service.b_wall_ms (Svc_cache.stats cold_cache).Svc_cache.stores;
  Fmt.pr "cache warm (--jobs 1) %12.0f ms %16.0f%% hit rate@."
    warm.Service.b_wall_ms (100.0 *. hit_rate);
  {
    sv_programs = n;
    sv_runs = runs;
    sv_cold = Svc_cache.stats cold_cache;
    sv_warm = Svc_cache.stats warm_cache;
    sv_warm_hit_rate = hit_rate;
    sv_cold_wall_ms = cold.Service.b_wall_ms;
    sv_warm_wall_ms = warm.Service.b_wall_ms;
  }

(* Additive fj-bench/1 field ("service"): throughput and cache hit
   rate of the fjc batch service over the bench corpus. Informational
   — Bench_diff ignores fields it does not know. *)
let service_json (sv : service_result) =
  let open Telemetry.Json in
  let stats_obj (s : Svc_cache.stats) =
    Obj
      [
        ("hits", Int s.Svc_cache.hits);
        ("misses", Int s.Svc_cache.misses);
        ("stores", Int s.Svc_cache.stores);
        ("quarantined", Int s.Svc_cache.quarantined);
      ]
  in
  Obj
    [
      ("programs", Int sv.sv_programs);
      ( "throughput",
        Arr
          (List.map
             (fun r ->
               Obj
                 [
                   ("jobs", Int r.sr_jobs);
                   ("wall_ms", Float r.sr_wall_ms);
                   ("programs_per_sec", Float r.sr_per_sec);
                 ])
             sv.sv_runs) );
      ( "cache",
        Obj
          [
            ("cold", stats_obj sv.sv_cold);
            ("warm", stats_obj sv.sv_warm);
            ("warm_hit_rate", Float sv.sv_warm_hit_rate);
            ("cold_wall_ms", Float sv.sv_cold_wall_ms);
            ("warm_wall_ms", Float sv.sv_warm_wall_ms);
          ] );
    ]


(* Machine-readable record of this run — committed as BENCH_<date>.json
   so the repository accumulates a perf trajectory and CI can detect
   regressions against it with [fjc bench diff] (see EXPERIMENTS.md
   for the schema). *)
let bench_json ~quick ~metrics ~service (groups : (string * measurement list) list)
    =
  let open Telemetry.Json in
  let program_json group (m : measurement) =
    Obj
      [
        ("name", Str m.prog.name);
        ("suite", Str group);
        ("base_words", Int m.base_words);
        ("join_words", Int m.join_words);
        ("base_steps", Int m.base_steps);
        ("join_steps", Int m.join_steps);
        ("base_jumps", Int m.base_jumps);
        ("join_jumps", Int m.join_jumps);
        ("delta_pct", Float m.delta_pct);
        (* Additive fj-bench/1 fields (schema-compatible): measured
           wall-clock summaries, exact over the sorted samples. *)
        ( "timing",
          Obj
            [
              ("warmup", Int !timing_warmup);
              ("samples", Int !timing_samples);
              ("base_eval_ms_median", Float (median m.base_eval_ms));
              ("base_eval_ms_p95", Float (percentile 0.95 m.base_eval_ms));
              ("join_eval_ms_median", Float (median m.join_eval_ms));
              ("join_eval_ms_p95", Float (percentile 0.95 m.join_eval_ms));
            ] );
        ( "optimizer",
          Obj
            [
              ("base", Pipeline.summary_json m.base_report);
              ("join", Pipeline.summary_json m.join_report);
            ] );
        (* Additive fj-bench/1 field: the static-analysis verdicts —
           informational only (Bench_diff never gates on them). *)
        ( "analysis",
          Obj
            [
              ("errors", Int m.analysis_errors);
              ("missed_opt", Int m.analysis_missed);
              ("fixpoint_iterations", Int m.analysis_iters);
            ] );
      ]
  in
  let suite_json (group, ms) =
    let deltas = List.map (fun m -> m.delta_pct) ms in
    Obj
      [
        ("suite", Str group);
        ("programs", Int (List.length ms));
        ("min_delta_pct", Float (List.fold_left Float.min infinity deltas));
        ("max_delta_pct", Float (List.fold_left Float.max neg_infinity deltas));
        ( "geomean_delta_pct",
          match geomean deltas with Some g -> Float g | None -> Null );
      ]
  in
  let date =
    let tm = Unix.gmtime (Unix.gettimeofday ()) in
    Fmt.str "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
      tm.Unix.tm_mday
  in
  Obj
    ([
       ("schema", Str "fj-bench/1");
       ("date", Str date);
       ("quick", Bool quick);
     ]
    (* Provenance: which tree produced this snapshot. Additive
       fj-bench/1 field, absent outside a git checkout. *)
    @ (match git_commit () with
      | Some c -> [ ("commit", Str c) ]
      | None -> [])
    @ [
      ( "programs",
        Arr
          (List.concat_map
             (fun (g, ms) -> List.map (program_json g) ms)
             groups) );
      ("suites", Arr (List.map suite_json groups));
      (* The harness-wide registry: counters plus latency histogram
         summaries (count / p50 / p95 / max) for eval.ms, eval.steps,
         pass.duration_ms, … — everything published while the suite
         ran. Additive fj-bench/1 field. *)
      ("metrics", Metrics.to_json metrics);
      (* Which of the optimizer's possible behaviours this bench corpus
         exercised — additive fj-bench/1 field, same shape as the
         [fj-cover/1] summary. *)
      ("coverage", Coverage.summary_json coverage);
      (* Compile-service throughput and cache hit rate — additive
         fj-bench/1 field, informational (never gated on). *)
      ("service", service_json service);
      ("failures", Arr (List.map (fun m -> Str m) (List.rev !failures)));
    ])

let write_json path ~quick ~metrics ~service groups =
  let json =
    Telemetry.Json.to_string (bench_json ~quick ~metrics ~service groups)
  in
  match open_out path with
  | exception Sys_error m -> fail "cannot write %s: %s" path m
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc json;
          output_char oc '\n');
      Fmt.pr "@.wrote %s@." path

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock benches                                          *)
(* ------------------------------------------------------------------ *)

let bechamel_benches () =
  let open Bechamel in
  let open Toolkit in
  let pipeline_bench name src =
    let denv, core = Fj_fusion.Streams.compile_pipeline src in
    let base = optimize Pipeline.Baseline denv core in
    let joins = optimize Pipeline.Join_points denv core in
    [
      Test.make
        ~name:(name ^ "/run-baseline")
        (Staged.stage (fun () -> ignore (Eval.eval base)));
      Test.make
        ~name:(name ^ "/run-join-points")
        (Staged.stage (fun () -> ignore (Eval.eval joins)));
      Test.make
        ~name:(name ^ "/optimize-join-points")
        (Staged.stage (fun () ->
             ignore (optimize Pipeline.Join_points denv core)));
    ]
  in
  let tests =
    Test.make_grouped ~name:"fj"
      [
        Test.make_grouped ~name:"fusion"
          (pipeline_bench "sum-map-filter"
             (Fj_fusion.Streams.sum_map_filter_skipless 400));
        Test.make_grouped ~name:"dot"
          (pipeline_bench "dot-product"
             (Fj_fusion.Streams.dot_product_skipless 200));
      ]
  in
  let benchmark () =
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
    in
    Benchmark.all cfg instances tests
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock results
  in
  Fmt.pr "@.%s@." (String.make 72 '-');
  Fmt.pr "Bechamel wall-clock (monotonic ns/run)@.";
  Fmt.pr "%s@." (String.make 72 '-');
  let results = analyze (benchmark ()) in
  Hashtbl.iter
    (fun name ols ->
      match Bechamel.Analyze.OLS.estimates ols with
      | Some [ est ] -> Fmt.pr "%-44s %12.1f ns/run@." name est
      | _ -> Fmt.pr "%-44s %12s@." name "?")
    results

(* ------------------------------------------------------------------ *)
(* Main                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let opt_value name =
    let n = Array.length Sys.argv in
    let rec go i =
      if i >= n then None
      else if Sys.argv.(i) = name && i + 1 < n then Some Sys.argv.(i + 1)
      else go (i + 1)
    in
    go 1
  in
  let json_path = opt_value "--json" in
  let int_opt name r =
    match opt_value name with
    | None -> ()
    | Some v -> (
        match int_of_string_opt v with
        | Some n when n >= 0 -> r := n
        | _ ->
            Fmt.epr "bench: %s expects a non-negative integer, got %S@." name v;
            exit 2)
  in
  int_opt "--warmup" timing_warmup;
  int_opt "--samples" timing_samples;
  if !timing_samples < 1 then begin
    Fmt.epr "bench: --samples must be at least 1@.";
    exit 2
  end;
  Fmt.pr "System F_J benchmark harness — reproducing PLDI'17 Table 1@.";
  Fmt.pr "(allocation words counted by the Fig. 3 abstract machine;@.";
  Fmt.pr " Allocs column = (join-points - baseline) / baseline)@.";
  (* Harness-wide metrics registry: every instrumented component
     (Eval, Bmachine, pipeline runs outside their own report scope)
     publishes into it for the duration of the suite. *)
  let metrics = Metrics.create () in
  Metrics.with_registry metrics @@ fun () ->
  let m1 = table1_group "spectral" Bench_programs.spectral in
  let m2 = table1_group "real" Bench_programs.real in
  let m3 = table1_group "shootout" Bench_programs.shootout in
  telemetry_table (m1 @ m2 @ m3);
  timing_table (m1 @ m2 @ m3);
  decision_table (m1 @ m2 @ m3);
  fusion_table 400;
  machine_table ();
  cc_ablation ();
  cps_table ();
  let service = service_table () in
  if not quick then bechamel_benches ();
  (match json_path with
  | Some path ->
      write_json path ~quick ~metrics ~service
        [ ("spectral", m1); ("real", m2); ("shootout", m3) ]
  | None -> ());
  let rc = report_failures () in
  Fmt.pr "@.done.@.";
  exit rc
