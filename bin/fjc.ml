(** [fjc] — the System F_J compiler driver.

    Subcommands:

    - [fjc check FILE...] — static analysis: the join-discipline verifier,
      constant/shape propagation, liveness, and the missed-optimization
      report; [--json] emits the [fj-check/1] schema (exit 3 on
      discipline errors; [--require-clean] gates on warnings too);
    - [fjc run FILE]    — compile and evaluate [main] (choose the
      optimisation mode with [--mode]); prints the result and the
      abstract machine's allocation statistics;
    - [fjc dump FILE]   — print the optimised Core (the paper's
      "Core dumps" users pore over, Sec. 8); [--report] adds the
      per-pass trace and the simplifier-tick table;
    - [fjc trace FILE]  — optimise and write the structured JSON trace
      of the whole pipeline, with per-pass GC/allocation accounting
      ([--out -] for stdout); [--perfetto] exports Chrome trace-event
      JSON with a GC counter track; [--folded] exports collapsed
      flamegraph stacks instead ([--folded-weight words] weights by
      compiler allocation);
    - [fjc stats FILE]  — run under every compiler configuration and
      tabulate allocations side by side ([--json] for machine-readable
      rows);
    - [fjc profile FILE] — run under baseline and join-points with the
      allocation profiler on and print the per-site cost-centre table
      side by side (words, %, steps per binder); [--lower] profiles on
      the block machine instead of the Fig. 3 evaluator; [--json]
      additionally dumps both profiles (with the machine event trace)
      as JSON;
    - [fjc explain FILE] — run the pipeline with the decision ledger on
      and narrate, per binder, every rewrite each pass fired or
      rejected and why ([--binder]/[--pass] filter; [--json] dumps the
      events; [--inline-threshold]/[--dup-threshold] reproduce a
      decision at other settings);
    - [fjc erase FILE]  — optimise, erase join points (Thm. 5), Lint
      the resulting System F term and print it;
    - [fjc lower FILE]  — lower to the block IR and print it, or run it
      on the block machine with [--exec];
    - [fjc cover FILE...] — optimization coverage of a corpus: which of
      the optimizer's possible behaviours (per-configuration Fig. 4
      ticks, ledger outcomes, incident causes) the corpus exercised;
      [--json] dumps the mergeable [fj-cover/1] map, [--require PCT]
      gates (exit 3) on the axiom-tick percentage;
    - [fjc fuzz]        — differential fuzzing: seeded well-typed random
      programs compiled under every configuration and compared against
      the unoptimised program on every observable; failures are
      minimized and reported with their replay seed (exit 3 whenever a
      counterexample is found); [--cover-guided] steers generation
      toward programs that reach new coverage points;
    - [fjc bench diff OLD NEW] — align two [fj-bench/1] trajectory
      files and report per-metric deltas; [--gate PCT] exits 3 on
      regressions beyond the gate (and, for timings, beyond recorded
      sample noise); [--md]/[--json] write report artifacts.

    [run], [dump] and [trace] compile under the self-healing [Recover]
    guard policy (a failing pass is rolled back and reported as an
    incident); [--strict] restores the aborting behaviour, and
    [--fault POINT:BEHAVIOUR] arms a named fault-injection point to
    demonstrate or test the machinery. *)

open Fj_core

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type loaded = { denv : Datacon.env; core : Syntax.expr }

let load ~no_prelude path =
  let src = read_file path in
  let denv, core =
    if no_prelude then Fj_surface.Infer.compile src
    else Fj_surface.Prelude.compile src
  in
  (match Lint.lint_result denv core with
  | Ok _ -> ()
  | Error err ->
      Fmt.epr "fjc: internal error: elaborated core does not lint:@.%a@."
        Lint.pp_error err;
      exit 2);
  { denv; core }

(* One output-channel policy for every [--json PATH|-] / [--out PATH|-]
   flag: [dest = "-"] prints the payload to stdout; otherwise it is
   written (newline-terminated) to the named file with a "wrote" note.
   Returns the exit code — 1 when the file cannot be opened. *)
let write_output ~what dest content =
  if dest = "-" then begin
    print_endline content;
    0
  end
  else
    match open_out dest with
    | exception Sys_error m ->
        Fmt.epr "fjc: cannot write %s: %s@." what m;
        1
    | oc ->
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc content;
            output_char oc '\n');
        Fmt.pr "fjc: wrote %s@." dest;
        0

let mode_conv =
  Cmdliner.Arg.enum
    [
      ("baseline", Pipeline.Baseline);
      ("join-points", Pipeline.Join_points);
      ("no-cc", Pipeline.No_cc);
      ("none", Pipeline.No_cc);
    ]

open Cmdliner

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Surface-language source file.")

let no_prelude_flag =
  Arg.(
    value & flag
    & info [ "no-prelude" ] ~doc:"Do not implicitly import the prelude.")

let mode_flag =
  Arg.(
    value
    & opt mode_conv Pipeline.Join_points
    & info [ "mode"; "m" ]
        ~doc:
          "Compiler configuration: $(b,join-points) (the paper's), \
           $(b,baseline) (pre-join-point GHC), or $(b,no-cc) (commuting \
           conversions disabled).")

let iters_flag =
  Arg.(
    value & opt int 3
    & info [ "iterations" ] ~doc:"Pipeline rounds (float-in/contify/simplify).")

(* The driver's default inlining budget is deliberately larger than the
   library default (whole kernels, not random terms); commands that
   expose the threshold flags pass them through so a decision quoted by
   [fjc explain] can be reproduced at any setting. *)
let default_inline_threshold = 300
let default_dup_threshold = 12

let inline_threshold_flag =
  Arg.(
    value
    & opt int default_inline_threshold
    & info [ "inline-threshold" ] ~docv:"N"
        ~doc:"Largest unfolding the simplifier splices at a call site.")

let dup_threshold_flag =
  Arg.(
    value
    & opt int default_dup_threshold
    & info [ "dup-threshold" ] ~docv:"N"
        ~doc:
          "Largest continuation/alternative copied into branches rather \
           than shared as a join point.")

let pipeline_config ?(inline_threshold = default_inline_threshold)
    ?(dup_threshold = default_dup_threshold) ?(policy = Guard.Recover) mode
    iters (l : loaded) =
  Pipeline.default_config ~mode ~iterations:iters ~datacons:l.denv
    ~inline_threshold ~dup_threshold ~policy ()

let optimized ?inline_threshold ?dup_threshold ?policy mode iters (l : loaded)
    =
  Pipeline.run
    (pipeline_config ?inline_threshold ?dup_threshold ?policy mode iters l)
    l.core

(* The driver compiles under the self-healing [Recover] policy: a
   misbehaving optimisation pass is rolled back and reported, not
   allowed to kill the compilation. [--strict] restores the abort
   behaviour (the posture for debugging the compiler itself). *)
let policy_flag =
  Arg.(
    value
    & vflag Guard.Recover
        [
          ( Guard.Strict,
            info [ "strict" ]
              ~doc:
                "Abort compilation when a pass fails (raises, breaks Lint) \
                 instead of rolling the pass back and continuing." );
          ( Guard.Recover,
            info [ "recover" ]
              ~doc:
                "Roll back and report a failing pass, continuing from the \
                 pre-pass tree (the default)." );
        ])

(* --fault POINT:BEHAVIOUR arms a named failure point inside the
   optimizer before compiling — the demonstration (and CI test) hook
   for the recovery machinery. *)
let fault_conv =
  let parse s =
    match Fault.parse_spec s with Ok v -> Ok v | Error m -> Error (`Msg m)
  in
  let print ppf (p, b, limit) =
    match limit with
    | None -> Fmt.pf ppf "%s:%s" p (Fault.behaviour_name b)
    | Some n -> Fmt.pf ppf "%s:%s:%d" p (Fault.behaviour_name b) n
  in
  Arg.conv (parse, print)

let fault_flag =
  Arg.(
    value & opt_all fault_conv []
    & info [ "fault" ] ~docv:"POINT:BEHAVIOUR[:N]"
        ~doc:
          "Arm a named fault-injection point inside the optimizer or the \
           compile service (e.g. $(b,simplify/result:raise), \
           $(b,service/worker:raise:2)); repeatable. An optional $(b,:N) \
           bounds how many times the point fires before auto-disarming (a \
           transient fault the retry machinery must absorb). Under the \
           default recover policy a failing pass is rolled back; under \
           $(b,--strict) compilation aborts.")

let arm_faults faults = List.iter (fun (p, b, limit) -> Fault.arm ?limit p b) faults

let report_incidents (r : Pipeline.report) =
  List.iter
    (fun i -> Fmt.epr "fjc: incident: %a@." Guard.pp_incident i)
    (Pipeline.incidents r)

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

let check_cmd =
  let doc =
    "Statically analyse programs: the join-point discipline verifier, \
     constant/shape propagation, liveness, and the missed-optimization \
     report (sites the analysis proves foldable or dead that survived the \
     Join_points pipeline, each naming the pass that declined and its \
     ledger reason)."
  in
  (* One row per input file. Surface files elaborate through the usual
     front end; [.sexp] files are read as raw Core so a deliberately
     ill-formed tree reaches the verifier (and exits 3 as a finding)
     instead of dying in the front end. *)
  let run files no_prelude iters inline_threshold dup_threshold json_out
      require_clean =
    let check_file file =
      if Filename.check_suffix file ".sexp" then
        match Sexp.read Datacon.builtins (read_file file) with
        | exception exn ->
            Error
              (Diagnostic.error "unreadable" ~site:"<top>"
                 (Printexc.to_string exn))
        | core -> Ok (Datacon.builtins, core)
      else
        let l = load ~no_prelude file in
        Ok (l.denv, l.core)
    in
    let results =
      List.map
        (fun file ->
          match check_file file with
          | Error d ->
              ( file,
                {
                  Absint.c_diagnostics = [ d ];
                  c_errors = 1;
                  c_warnings = 0;
                  c_iterations = 0;
                  c_value = Absint.Top;
                } )
          | Ok (denv, core) ->
              let cfg =
                pipeline_config ~inline_threshold ~dup_threshold
                  Pipeline.Join_points iters { denv; core }
              in
              (file, Absint.check ~config:cfg core))
        files
    in
    let total_errors, total_warnings =
      List.fold_left
        (fun (e, w) (_, (r : Absint.check_result)) ->
          (e + r.Absint.c_errors, w + r.Absint.c_warnings))
        (0, 0) results
    in
    (* With [--json -] the payload owns stdout (the cover/diff rule). *)
    if json_out <> Some "-" then
      List.iter
        (fun (file, (r : Absint.check_result)) ->
          Fmt.pr "%s: %d error(s), %d warning(s), %d fixpoint round(s), \
                  value %s@."
            file r.Absint.c_errors r.Absint.c_warnings r.Absint.c_iterations
            (Absint.aval_to_string r.Absint.c_value);
          List.iter
            (fun d -> Fmt.pr "  %a@." Diagnostic.pp d)
            r.Absint.c_diagnostics)
        results;
    let json_rc =
      match json_out with
      | None -> 0
      | Some dest ->
          let file_json (file, (r : Absint.check_result)) =
            Telemetry.Json.(
              Obj
                [
                  ("file", Str file);
                  ("errors", Int r.Absint.c_errors);
                  ("warnings", Int r.Absint.c_warnings);
                  ("fixpoint_iterations", Int r.Absint.c_iterations);
                  ("abstract", Str (Absint.aval_to_string r.Absint.c_value));
                  ( "diagnostics",
                    Arr (List.map Diagnostic.to_json r.Absint.c_diagnostics)
                  );
                ])
          in
          write_output ~what:"check report" dest
            (Telemetry.Json.to_string
               Telemetry.Json.(
                 Obj
                   [
                     ("schema", Str "fj-check/1");
                     ("files", Arr (List.map file_json results));
                     ("errors", Int total_errors);
                     ("warnings", Int total_warnings);
                   ]))
    in
    if total_errors > 0 || (require_clean && total_warnings > 0) then 3
    else json_rc
  in
  let files_arg =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:
            "Surface-language source files, or raw Core s-expressions \
             ($(b,.sexp)).")
  in
  let json_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:
            "Write the diagnostics (schema $(b,fj-check/1), one element \
             per diagnostic round-trippable through the $(b,Diagnostic) \
             JSON codec) to $(docv); $(b,-) for stdout (suppresses the \
             console report).")
  in
  let require_clean_flag =
    Arg.(
      value & flag
      & info [ "require-clean" ]
          ~doc:
            "Exit 3 on $(i,any) diagnostic, warnings included — the CI \
             posture; by default only discipline errors gate.")
  in
  let exits =
    Cmd.Exit.info 3
      ~doc:
        "the analysis found discipline errors (or, with \
         $(b,--require-clean), any diagnostic)."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "check" ~doc ~exits)
    Term.(
      const run $ files_arg $ no_prelude_flag $ iters_flag
      $ inline_threshold_flag $ dup_threshold_flag $ json_flag
      $ require_clean_flag)

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let doc = "Compile and evaluate a program." in
  let run file no_prelude mode iters unopt inline_threshold dup_threshold
      policy faults =
    arm_faults faults;
    let l = load ~no_prelude file in
    let e =
      if unopt then l.core
      else begin
        let cfg =
          pipeline_config ~inline_threshold ~dup_threshold ~policy mode iters l
        in
        let e, r = Pipeline.run_report cfg l.core in
        report_incidents r;
        e
      end
    in
    (match Lint.lint_result l.denv e with
    | Ok _ -> ()
    | Error err ->
        Fmt.epr "fjc: optimiser broke the program:@.%a@." Lint.pp_error err;
        exit 2);
    let t, s = Eval.run_deep e in
    Fmt.pr "%a@." Eval.pp_tree t;
    Fmt.pr "-- %a@." Eval.pp_stats s;
    0
  in
  let unopt_flag =
    Arg.(value & flag & info [ "O0"; "unoptimised" ] ~doc:"Skip the optimiser.")
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ file_arg $ no_prelude_flag $ mode_flag $ iters_flag
      $ unopt_flag $ inline_threshold_flag $ dup_threshold_flag $ policy_flag
      $ fault_flag)

(* ------------------------------------------------------------------ *)
(* dump                                                                *)
(* ------------------------------------------------------------------ *)

let dump_cmd =
  let doc = "Print the optimised Core." in
  let run file no_prelude mode iters unopt report inline_threshold
      dup_threshold policy faults =
    arm_faults faults;
    let l = load ~no_prelude file in
    if unopt then Fmt.pr "%a@." Pretty.pp l.core
    else begin
      let cfg =
        pipeline_config ~inline_threshold ~dup_threshold ~policy mode iters l
      in
      let e, r = Pipeline.run_report cfg l.core in
      report_incidents r;
      if report then Fmt.pr "-- passes:@.%a@.@." Pipeline.pp_report r;
      Fmt.pr "%a@." Pretty.pp e
    end;
    0
  in
  let unopt_flag =
    Arg.(value & flag & info [ "O0"; "unoptimised" ] ~doc:"Dump the input core.")
  in
  let report_flag =
    Arg.(
      value & flag
      & info [ "report" ]
          ~doc:"Show the per-pass trace and the simplifier-tick table.")
  in
  Cmd.v (Cmd.info "dump" ~doc)
    Term.(
      const run $ file_arg $ no_prelude_flag $ mode_flag $ iters_flag
      $ unopt_flag $ report_flag $ inline_threshold_flag $ dup_threshold_flag
      $ policy_flag $ fault_flag)

(* ------------------------------------------------------------------ *)
(* trace                                                               *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let doc = "Optimise and emit the structured JSON trace of the pipeline." in
  let run file no_prelude mode iters out perfetto folded folded_weight
      inline_threshold dup_threshold policy faults =
    arm_faults faults;
    let l = load ~no_prelude file in
    match perfetto with
    | Some dest ->
        (* Chrome trace-event export: compile under {e every}
           configuration so the three timelines sit side by side, one
           Perfetto track each. Same shared [--out]-style writer as
           every other structured output. *)
        let reports =
          List.map
            (fun mode ->
              let cfg =
                pipeline_config ~inline_threshold ~dup_threshold ~policy mode
                  iters l
              in
              let _, r = Pipeline.run_report cfg l.core in
              report_incidents r;
              r)
            [ Pipeline.Baseline; Pipeline.Join_points; Pipeline.No_cc ]
        in
        write_output ~what:"perfetto trace" dest
          (Telemetry.Json.to_string (Pipeline.perfetto_json ~file reports))
    | None -> (
        let cfg =
          pipeline_config ~inline_threshold ~dup_threshold ~policy mode iters l
        in
        let _, r = Pipeline.run_report cfg l.core in
        report_incidents r;
        match folded with
        | Some dest ->
            (* Collapsed-stack flamegraph lines instead of the JSON
               trace: pipe to flamegraph.pl / inferno, or load in
               speedscope. *)
            write_output ~what:"folded flamegraph" dest
              (Pipeline.folded ~weight:folded_weight r)
        | None -> write_output ~what:"trace" out (Pipeline.report_to_json r))
  in
  let out_flag =
    Arg.(
      value
      & opt string "trace.json"
      & info [ "out"; "o" ] ~docv:"PATH"
          ~doc:"Where to write the trace; $(b,-) for stdout.")
  in
  let perfetto_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "perfetto" ] ~docv:"PATH"
          ~doc:
            "Instead of the single-configuration trace, compile under \
             $(b,every) configuration and write Chrome trace-event JSON \
             (one Perfetto track per configuration, histogram summaries \
             under otherData) to $(docv); $(b,-) for stdout. Load it in \
             ui.perfetto.dev or chrome://tracing.")
  in
  let folded_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"PATH"
          ~doc:
            "Instead of the JSON trace, write the compile's span tree as \
             collapsed flamegraph stacks ($(b,frame;frame;frame WEIGHT) \
             lines, exclusive weights) to $(docv); $(b,-) for stdout. \
             Feed to flamegraph.pl, inferno-flamegraph, or speedscope.")
  in
  let folded_weight_flag =
    Arg.(
      value
      & opt
          (enum [ ("time", Span.Self_time); ("words", Span.Alloc_words) ])
          Span.Self_time
      & info [ "folded-weight" ] ~docv:"KIND"
          ~doc:
            "What $(b,--folded) weights count: $(b,time) (exclusive \
             wall-clock microseconds, the default) or $(b,words) \
             (exclusive words the compiler allocated — an allocation \
             flamegraph).")
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const run $ file_arg $ no_prelude_flag $ mode_flag $ iters_flag
      $ out_flag $ perfetto_flag $ folded_flag $ folded_weight_flag
      $ inline_threshold_flag $ dup_threshold_flag $ policy_flag $ fault_flag)

(* ------------------------------------------------------------------ *)
(* stats                                                               *)
(* ------------------------------------------------------------------ *)

let stats_cmd =
  let doc = "Compare allocation under every compiler configuration." in
  let run file no_prelude iters json =
    let l = load ~no_prelude file in
    let t0, s0 = Eval.run_deep l.core in
    let rows = ref [] in
    let row name (s : Eval.stats) extra =
      if json then
        rows :=
          Telemetry.Json.(
            Obj
              ([
                 ("configuration", Str name);
                 ("words", Int s.Eval.words);
                 ("objects", Int s.Eval.objects);
                 ("steps", Int s.Eval.steps);
                 ("jumps", Int s.Eval.jumps);
               ]
              @ extra))
          :: !rows
      else
        Fmt.pr "%-28s %10d %10d %8d %8d@." name s.Eval.words s.Eval.objects
          s.Eval.steps s.Eval.jumps
    in
    if not json then
      Fmt.pr "%-28s %10s %10s %8s %8s@." "configuration" "words" "objects"
        "steps" "jumps";
    row "unoptimised" s0 [];
    List.iter
      (fun mode ->
        let cfg =
          Pipeline.default_config ~mode ~iterations:iters ~datacons:l.denv
            ~inline_threshold:300 ()
        in
        let e, r = Pipeline.run_report cfg l.core in
        let t, s = Eval.run_deep e in
        (match Eval.tree_mismatch t0 t with
        | None -> ()
        | Some where ->
            (* Which configuration diverged, where the results first
               disagree, and both trees in full — enough to reproduce
               the miscompilation without rerunning. *)
            Fmt.epr "fjc: RESULT MISMATCH under %s@."
              (Pipeline.mode_name mode);
            Fmt.epr "  %s@." where;
            Fmt.epr "  unoptimised: %a@." Eval.pp_tree t0;
            Fmt.epr "  %-12s %a@."
              (Pipeline.mode_name mode ^ ":")
              Eval.pp_tree t;
            exit 2);
        row (Pipeline.mode_name mode) s
          [
            ("total_ticks", Telemetry.Json.Int (Pipeline.total_ticks r));
            ("contified", Telemetry.Json.Int (Pipeline.contified r));
          ])
      [ Pipeline.Baseline; Pipeline.Join_points; Pipeline.No_cc ];
    if json then
      print_endline
        (Telemetry.Json.to_string
           (Telemetry.Json.Obj
              [
                ("file", Telemetry.Json.Str file);
                ("result", Telemetry.Json.Str (Fmt.str "%a" Eval.pp_tree t0));
                ("rows", Telemetry.Json.Arr (List.rev !rows));
              ]))
    else Fmt.pr "result: %a@." Eval.pp_tree t0;
    0
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit machine-readable JSON rows on stdout.")
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(const run $ file_arg $ no_prelude_flag $ iters_flag $ json_flag)

(* ------------------------------------------------------------------ *)
(* profile                                                             *)
(* ------------------------------------------------------------------ *)

let profile_cmd =
  let doc =
    "Per-site allocation profile (cost centres), baseline vs join points."
  in
  let run file no_prelude iters lower trace_cap json_out =
    let l = load ~no_prelude file in
    (* One run under one mode, profiler attached. *)
    let profiled mode =
      let e = optimized mode iters l in
      let prof = Profile.create ~trace_cap () in
      let stats =
        if lower then
          let prog = Fj_machine.Lower.lower_program e in
          snd (Fj_machine.Bmachine.run ~profile:prof prog)
        else snd (Eval.run_deep ~profile:prof e)
      in
      (prof, stats)
    in
    let pb, sb = profiled Pipeline.Baseline in
    let pj, sj = profiled Pipeline.Join_points in
    (* Merge the two cost-centre tables on the site label so each
       binder's baseline and join-points costs sit side by side. *)
    let module SM = Map.Make (String) in
    let tbl = ref SM.empty in
    List.iter
      (fun (s : Profile.site) ->
        tbl := SM.add s.site_label (Some s, None) !tbl)
      (Profile.sites pb);
    List.iter
      (fun (s : Profile.site) ->
        tbl :=
          SM.update s.site_label
            (function
              | Some (b, _) -> Some (b, Some s) | None -> Some (None, Some s))
            !tbl)
      (Profile.sites pj);
    let twb = max 1 (Profile.total_words pb) in
    let twj = max 1 (Profile.total_words pj) in
    let rows =
      List.sort
        (fun (_, (b1, j1)) (_, (b2, j2)) ->
          let words = function
            | Some (s : Profile.site) -> s.s_words
            | None -> 0
          in
          compare
            (words b2 + words j2, words b2)
            (words b1 + words j1, words b1))
        (SM.bindings !tbl)
    in
    Fmt.pr "%-22s %-7s | %10s %6s %8s | %10s %6s %8s@." "site" "kind"
      "base wds" "%" "steps" "join wds" "%" "steps";
    Fmt.pr "%s@." (String.make 80 '-');
    List.iter
      (fun (label, (b, j)) ->
        let kind =
          match (j, b) with
          | Some (s : Profile.site), _ | None, Some s ->
              Profile.kind_name s.site_kind
          | None, None -> "?"
        in
        let cell ppf (total, s) =
          match s with
          | None -> Fmt.pf ppf "%10s %6s %8s" "-" "-" "-"
          | Some (s : Profile.site) ->
              Fmt.pf ppf "%10d %5.1f%% %8d" s.s_words
                (100.0 *. float_of_int s.s_words /. float_of_int total)
                s.s_steps
        in
        Fmt.pr "%-22s %-7s | %a | %a@." label kind cell (twb, b) cell (twj, j))
      rows;
    Fmt.pr "%s@." (String.make 80 '-');
    Fmt.pr "%-30s | %a@." "baseline" Eval.pp_stats sb;
    Fmt.pr "%-30s | %a@." "join-points" Eval.pp_stats sj;
    (* The per-site form of the paper's claim: join-labelled sites
       allocate nothing. *)
    let bad =
      List.filter (fun (s : Profile.site) -> s.s_words > 0)
        (Profile.join_sites pj)
    in
    (if bad = [] then
       Fmt.pr "join sites allocate zero words: OK (%d site(s))@."
         (List.length (Profile.join_sites pj))
     else
       List.iter
         (fun (s : Profile.site) ->
           Fmt.epr "fjc: join site %s allocated %d words!@." s.site_label
             s.s_words)
         bad);
    let wrote =
      match json_out with
      | None -> 0
      | Some path ->
          let json =
            Telemetry.Json.(
              Obj
                [
                  ("file", Str file);
                  ("machine", Str (if lower then "block" else "fig3"));
                  ("baseline", Profile.to_json ~stats:sb pb);
                  ("join_points", Profile.to_json ~stats:sj pj);
                ])
          in
          write_output ~what:"profile" path (Telemetry.Json.to_string json)
    in
    if bad = [] && wrote = 0 then 0 else 1
  in
  let lower_flag =
    Arg.(
      value & flag
      & info [ "lower" ]
          ~doc:"Profile the lowered program on the block machine.")
  in
  let trace_cap_flag =
    Arg.(
      value
      & opt int Profile.default_trace_cap
      & info [ "trace-cap" ] ~docv:"N"
          ~doc:"Event ring-buffer bound (0 disables the event trace).")
  in
  let json_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:
            "Also dump both profiles (sites + event trace) as JSON; $(b,-) \
             for stdout.")
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const run $ file_arg $ no_prelude_flag $ iters_flag $ lower_flag
      $ trace_cap_flag $ json_flag)

(* ------------------------------------------------------------------ *)
(* explain                                                             *)
(* ------------------------------------------------------------------ *)

let explain_cmd =
  let doc =
    "Explain the optimizer's decisions, per binder: every rewrite each \
     pass fired or rejected, with the structured reason."
  in
  let run file no_prelude mode iters inline_threshold dup_threshold binder
      pass_filter json_out =
    let l = load ~no_prelude file in
    let cfg = pipeline_config ~inline_threshold ~dup_threshold mode iters l in
    let _, r = Pipeline.run_report cfg l.core in
    (* Tag each ledger event with the pipeline pass that recorded it
       (e.g. ["contify (2)"]), in run order. *)
    let tagged =
      List.concat_map
        (fun (p : Pipeline.pass_record) ->
          List.map (fun ev -> (p.Pipeline.pass, ev)) p.Pipeline.decisions)
        (Pipeline.passes r)
    in
    let prefix_of s p =
      String.length s >= String.length p
      && String.sub s 0 (String.length p) = p
    in
    let selected =
      List.filter
        (fun (plabel, (ev : Decision.event)) ->
          (match binder with
          | None -> true
          | Some b -> String.equal ev.Decision.d_site b)
          &&
          match pass_filter with
          | None -> true
          | Some p -> String.equal ev.Decision.d_pass p || prefix_of plabel p)
        tagged
    in
    let events = List.map snd selected in
    (* Narrative: decisions grouped per site, in order of first
       appearance; suppressed when the JSON goes to stdout. *)
    (if json_out <> Some "-" then begin
       let module SM = Map.Make (String) in
       let order = ref [] in
       let groups = ref SM.empty in
       List.iter
         (fun ((_, ev) as item) ->
           let site = ev.Decision.d_site in
           match SM.find_opt site !groups with
           | None ->
               order := site :: !order;
               groups := SM.add site [ item ] !groups
           | Some items -> groups := SM.add site (item :: items) !groups)
         selected;
       List.iter
         (fun site ->
           Fmt.pr "%s:@." site;
           List.iter
             (fun (plabel, (ev : Decision.event)) ->
               match ev.Decision.d_verdict with
               | Decision.Fired ->
                   Fmt.pr "  %-18s %s fired@." plabel
                     (Decision.action_name ev.Decision.d_action)
               | Decision.Rejected reason ->
                   Fmt.pr "  %-18s %s rejected: %a@." plabel
                     (Decision.action_name ev.Decision.d_action)
                     Decision.pp_reason reason)
             (List.rev (SM.find site !groups)))
         (List.rev !order);
       Fmt.pr "-- %d decision(s): %d fired, %d rejected@."
         (List.length events) (Decision.fired events)
         (Decision.rejected events);
       List.iter
         (fun (name, n) -> Fmt.pr "--   %-28s %d@." name n)
         (Decision.reason_counts events)
     end);
    match json_out with
    | None -> 0
    | Some path ->
        let event_json (plabel, ev) =
          match Decision.event_json ev with
          | Telemetry.Json.Obj fields ->
              Telemetry.Json.Obj
                (("pipeline_pass", Telemetry.Json.Str plabel) :: fields)
          | j -> j
        in
        let json =
          Telemetry.Json.(
            Obj
              [
                ("file", Str file);
                ("mode", Str (Pipeline.mode_name mode));
                ("inline_threshold", Int inline_threshold);
                ("dup_threshold", Int dup_threshold);
                ("events", Arr (List.map event_json selected));
                ("summary", Decision.summary_json events);
              ])
        in
        write_output ~what:"explanation" path (Telemetry.Json.to_string json)
  in
  let binder_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "binder" ] ~docv:"NAME"
          ~doc:"Only decisions whose site is this binder name hint.")
  in
  let pass_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "pass" ] ~docv:"NAME"
          ~doc:
            "Only decisions made by this pass (a deciding pass like \
             $(b,contify), or a pipeline-pass prefix like \
             $(b,simplify (0))).")
  in
  let json_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:
            "Also dump the selected decisions (with the run's settings) \
             as JSON; $(b,-) for stdout.")
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(
      const run $ file_arg $ no_prelude_flag $ mode_flag $ iters_flag
      $ inline_threshold_flag $ dup_threshold_flag $ binder_flag $ pass_flag
      $ json_flag)

(* ------------------------------------------------------------------ *)
(* erase                                                               *)
(* ------------------------------------------------------------------ *)

let erase_cmd =
  let doc =
    "Optimise, erase join points back to System F (Theorem 5), and print."
  in
  let run file no_prelude mode iters =
    let l = load ~no_prelude file in
    let e = optimized mode iters l in
    let erased = Erase.erase e in
    assert (Erase.is_join_free erased);
    (match Lint.lint_result l.denv erased with
    | Ok ty -> Fmt.pr "-- erased, lints at %a@." Types.pp ty
    | Error err ->
        Fmt.epr "fjc: erasure broke the program:@.%a@." Lint.pp_error err;
        exit 2);
    Fmt.pr "%a@." Pretty.pp erased;
    0
  in
  Cmd.v (Cmd.info "erase" ~doc)
    Term.(const run $ file_arg $ no_prelude_flag $ mode_flag $ iters_flag)

(* ------------------------------------------------------------------ *)
(* lower                                                               *)
(* ------------------------------------------------------------------ *)

let lower_cmd =
  let doc = "Lower to the block IR (join points become blocks + gotos)." in
  let run file no_prelude mode iters exec =
    let l = load ~no_prelude file in
    let e = optimized mode iters l in
    let prog = Fj_machine.Lower.lower_program e in
    if exec then begin
      let v, s = Fj_machine.Bmachine.run prog in
      Fmt.pr "%a@." Eval.pp_tree (Fj_machine.Bmachine.tree_of_value v);
      Fmt.pr "-- %a@." Fj_machine.Bmachine.pp_stats s
    end
    else Fmt.pr "%a@." Fj_machine.Blockir.pp_program prog;
    0
  in
  let exec_flag =
    Arg.(value & flag & info [ "exec" ] ~doc:"Run on the block machine.")
  in
  Cmd.v (Cmd.info "lower" ~doc)
    Term.(
      const run $ file_arg $ no_prelude_flag $ mode_flag $ iters_flag
      $ exec_flag)

(* ------------------------------------------------------------------ *)
(* cps                                                                 *)
(* ------------------------------------------------------------------ *)

let cps_cmd =
  let doc =
    "Erase join points and CPS-transform (Sec. 8 comparison); runs both \
     styles and reports size/lambda counts."
  in
  let run file no_prelude mode iters =
    let l = load ~no_prelude file in
    let direct = optimized mode iters l in
    let erased = Erase.erase direct in
    match Cps.transform erased with
    | exception Cps.Unsupported m ->
        Fmt.epr "fjc: program not in the CPS fragment: %s@." m;
        1
    | cpsd ->
        (match Lint.lint_result l.denv cpsd with
        | Ok _ -> ()
        | Error err ->
            Fmt.epr "fjc: CPS output does not lint: %a@." Lint.pp_error err;
            exit 2);
        let td, sd = Eval.run_deep direct in
        let tc, sc = Eval.run_deep cpsd in
        if not (Eval.equal_tree td tc) then begin
          Fmt.epr "fjc: CPS result differs!@.";
          exit 2
        end;
        Fmt.pr "result: %a@." Eval.pp_tree td;
        Fmt.pr "%-14s size %6d  lambdas %5d  %a@." "direct"
          (Syntax.size direct) (Cps.count_lams direct) Eval.pp_stats sd;
        Fmt.pr "%-14s size %6d  lambdas %5d  %a@." "CPS" (Syntax.size cpsd)
          (Cps.count_lams cpsd) Eval.pp_stats sc;
        0
  in
  Cmd.v (Cmd.info "cps" ~doc)
    Term.(const run $ file_arg $ no_prelude_flag $ mode_flag $ iters_flag)

(* ------------------------------------------------------------------ *)
(* sexp                                                                *)
(* ------------------------------------------------------------------ *)

let sexp_cmd =
  let doc = "Serialise the optimised Core as S-expressions (stdout)." in
  let run file no_prelude mode iters =
    let l = load ~no_prelude file in
    let e = optimized mode iters l in
    print_string (Sexp.write e);
    print_newline ();
    0
  in
  Cmd.v (Cmd.info "sexp" ~doc)
    Term.(const run $ file_arg $ no_prelude_flag $ mode_flag $ iters_flag)

(* ------------------------------------------------------------------ *)
(* cover                                                               *)
(* ------------------------------------------------------------------ *)

let cover_cmd =
  let doc =
    "Optimization coverage of a corpus: compile every file under every \
     pipeline configuration and report which of the optimizer's possible \
     behaviours (Fig. 4 ticks per configuration, ledger outcomes, \
     incident causes) the corpus exercised."
  in
  let run files no_prelude iters inline_threshold dup_threshold json require
      faults =
    arm_faults faults;
    let cover = Coverage.create () in
    List.iter
      (fun file ->
        let l = load ~no_prelude file in
        List.iter
          (fun mode ->
            let cfg =
              pipeline_config ~inline_threshold ~dup_threshold mode iters l
            in
            let _, r = Pipeline.run_report cfg l.core in
            Coverage.observe_report cover r)
          [ Pipeline.Baseline; Pipeline.Join_points; Pipeline.No_cc ])
      files;
    (* With [--json -] the payload owns stdout; keep the table off it. *)
    if json <> Some "-" then begin
      Fmt.pr "fjc: coverage over %d file(s) x 3 configuration(s):@."
        (List.length files);
      Fmt.pr "%a@." Coverage.pp_summary cover;
      let never = Coverage.never_fired cover in
      if never <> [] then begin
        Fmt.pr "never fired (%d):@." (List.length never);
        List.iter
          (fun (d, p) -> Fmt.pr "  %s/%s@." (Coverage.dim_name d) p)
          never
      end
    end;
    let json_rc =
      match json with
      | None -> 0
      | Some dest ->
          write_output ~what:"coverage map" dest
            (Telemetry.Json.to_string (Coverage.to_json cover))
    in
    match require with
    | None -> json_rc
    | Some pct ->
        let c, t = Coverage.axioms_covered cover in
        let got = 100.0 *. float_of_int c /. float_of_int t in
        if got +. 1e-9 >= pct then json_rc
        else begin
          Fmt.epr
            "fjc: coverage gate failed: %.1f%% of axiom ticks fired (%d/%d), \
             required %.1f%%@."
            got c t pct;
          3
        end
  in
  let files_arg =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:"Surface-language source files (the corpus).")
  in
  let json_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:
            "Write the full coverage map (schema $(b,fj-cover/1), \
             round-trippable and mergeable) to $(docv); $(b,-) for stdout \
             (suppresses the table).")
  in
  let require_flag =
    Arg.(
      value
      & opt (some float) None
      & info [ "require" ] ~docv:"PCT"
          ~doc:
            "Exit 3 unless at least $(docv) percent of the simplifier's \
             tick names fired under at least one configuration (the Fig. 4 \
             axiom gate).")
  in
  let exits =
    Cmd.Exit.info 3
      ~doc:"the corpus' axiom coverage is below the $(b,--require) gate."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "cover" ~doc ~exits)
    Term.(
      const run $ files_arg $ no_prelude_flag $ iters_flag
      $ inline_threshold_flag $ dup_threshold_flag $ json_flag $ require_flag
      $ fault_flag)

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd =
  let doc =
    "Differential fuzzing: generated well-typed programs, every pipeline \
     configuration vs the unoptimised seed (results, Lint, evaluation \
     strategies, the zero-allocation join invariant)."
  in
  let run seed count size fuel out verbose heartbeat flight want_cover
      guided absint cover_out corpus_out faults =
    arm_faults faults;
    (* A soak must die gracefully: the first SIGINT/SIGTERM finishes the
       case in flight, flushes the flight recorder and any partial
       results, and exits 130/143; a second signal exits immediately. *)
    Fj_service.Shutdown.install ();
    (* Flight recorder: heartbeats go to stderr so they interleave with
       (rather than corrupt) the per-case progress on stdout. *)
    let on_heartbeat hb =
      if heartbeat > 0 then Fmt.epr "fjc: %a@." Fuzz.pp_heartbeat hb
    in
    let recorder =
      if heartbeat = 0 && flight = None then None
      else
        Some
          (Fuzz.recorder
             ~every:(if heartbeat > 0 then heartbeat else max_int)
             ~on_heartbeat ())
    in
    let cover =
      if want_cover || guided || cover_out <> None || corpus_out <> None then
        Some (Coverage.create ())
      else None
    in
    let on_interesting case_seed e =
      match corpus_out with
      | None -> ()
      | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          let path =
            Filename.concat dir (Fmt.str "interesting-%d.sexp" case_seed)
          in
          ignore
            (write_output ~what:"interesting program" path (Sexp.write e))
    in
    let on_case case_seed v =
      match v with
      | Fuzz.Pass ->
          if verbose then Fmt.pr "seed %d: pass@." case_seed
      | Fuzz.Skip why ->
          if verbose then Fmt.pr "seed %d: skip (%s)@." case_seed why
      | Fuzz.Fail { mode; kind; _ } ->
          Fmt.pr "seed %d: FAIL %s under %s (minimizing...)@." case_seed kind
            mode
    in
    let s =
      Fuzz.run ~size ~fuel ~on_case ?recorder ?cover ~guided ~absint
        ~on_interesting
        ~should_stop:(fun () -> Fj_service.Shutdown.requested () <> None)
        ~seed ~count ()
    in
    let flight_rc =
      match (flight, recorder) with
      | Some dest, Some r ->
          write_output ~what:"flight recording" dest
            (Telemetry.Json.to_string (Fuzz.flight_json ?cover r))
      | _ -> 0
    in
    Fmt.pr "fuzz: %d case(s): %d passed, %d skipped, %d failed@." s.Fuzz.cases
      s.Fuzz.passed s.Fuzz.skipped
      (List.length s.Fuzz.failures);
    let cover_rc =
      match cover with
      | None -> 0
      | Some c ->
          Fmt.pr "fuzz: coverage %d/%d point(s) (%.1f%%), %d interesting \
                  case(s)@."
            (Coverage.covered c) Coverage.universe_size (Coverage.percent c)
            s.Fuzz.interesting;
          (match cover_out with
          | None -> 0
          | Some dest ->
              write_output ~what:"coverage map" dest
                (Telemetry.Json.to_string (Coverage.to_json c)))
    in
    List.iter (fun f -> Fmt.pr "@.%a@." Fuzz.pp_failure f) s.Fuzz.failures;
    (match out with
    | None -> ()
    | Some dir ->
        (* One JSON file per minimized counterexample, named by seed so
           CI artifacts are self-describing. *)
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        List.iter
          (fun (f : Fuzz.failure) ->
            let path =
              Filename.concat dir (Fmt.str "counterexample-%d.json" f.f_seed)
            in
            ignore
              (write_output ~what:"counterexample" path
                 (Telemetry.Json.to_string (Fuzz.failure_json f))))
          s.Fuzz.failures);
    (* Exit-code contract: finding a counterexample is always exit 3,
       whether or not --out / --flight / --cover-out also ran (their
       write failures surface as exit 1 only on otherwise-clean runs).
       An interrupted but counterexample-free soak exits with the
       signal's code (130/143) — after everything above has flushed. *)
    let shutdown_rc =
      match Fj_service.Shutdown.requested () with
      | None -> 0
      | Some r ->
          Fmt.epr "fjc: fuzz: interrupted after %d case(s); partial results \
                   flushed@."
            s.Fuzz.cases;
          Fj_service.Shutdown.exit_code r
    in
    if s.Fuzz.failures <> [] then 3
    else if shutdown_rc <> 0 then shutdown_rc
    else max flight_rc cover_rc
  in
  let seed_flag =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:"First case seed; case $(i,i) uses seed $(docv)+$(i,i).")
  in
  let count_flag =
    Arg.(
      value & opt int 100
      & info [ "count"; "n" ] ~docv:"N" ~doc:"Number of cases to run.")
  in
  let size_flag =
    Arg.(
      value & opt int Gen.default_size
      & info [ "size" ] ~docv:"N" ~doc:"Generator size budget per program.")
  in
  let fuel_flag =
    Arg.(
      value
      & opt int 200_000
      & info [ "fuel" ] ~docv:"N"
          ~doc:
            "Machine steps allowed per evaluation of the seed program \
             (optimised programs get 8x; exhaustion is a skip, not a \
             failure).")
  in
  let out_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:
            "Write each minimized counterexample as JSON into this \
             directory (created if missing).")
  in
  let verbose_flag =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ] ~doc:"Report every case, not just failures.")
  in
  let heartbeat_flag =
    Arg.(
      value
      & opt int Fuzz.default_heartbeat_every
      & info [ "heartbeat" ] ~docv:"N"
          ~doc:
            "Print a heartbeat line (cases/sec, incident count, latency \
             histogram snapshot) to stderr every $(docv) cases, plus one \
             at the end of the run; $(b,0) silences them.")
  in
  let flight_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight" ] ~docv:"PATH"
          ~doc:
            "After the run, write the flight recording (bounded ring of \
             recent spans as Perfetto-loadable trace events, all \
             heartbeats, metrics) as JSON to $(docv); $(b,-) for stdout.")
  in
  let cover_flag =
    Arg.(
      value & flag
      & info [ "cover" ]
          ~doc:
            "Keep a cumulative optimization coverage map across the run \
             (see $(b,fjc cover)); reports coverage in heartbeats and the \
             final summary, and counts cases reaching previously-unseen \
             points as interesting.")
  in
  let cover_guided_flag =
    Arg.(
      value & flag
      & info [ "cover-guided" ]
          ~doc:
            "Coverage-guided generation (implies $(b,--cover)): programs \
             that reach new coverage points are retained, and about half \
             of the later cases mutate a retained seed instead of \
             generating fresh.")
  in
  let absint_flag =
    Arg.(
      value & flag
      & info [ "absint" ]
          ~doc:
            "Also run the analysis-soundness oracle on every case: the \
             $(b,Absint) discipline verifier must be clean and the \
             concrete result must lie in the concretization of the \
             abstract one, on the seed and on every optimised output.")
  in
  let cover_out_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "cover-out" ] ~docv:"PATH"
          ~doc:
            "After the run, write the coverage map (schema $(b,fj-cover/1)) \
             as JSON to $(docv) (implies $(b,--cover)); $(b,-) for stdout.")
  in
  let corpus_out_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus-out" ] ~docv:"DIR"
          ~doc:
            "Write every interesting program (one that reached a \
             previously-unseen coverage point) as an s-expression into \
             $(docv) (implies $(b,--cover); created if missing).")
  in
  let exits =
    Cmd.Exit.info 3
      ~doc:
        "a counterexample was found (reported, minimized, and written out \
         when $(b,--out) is given)."
    :: Cmd.Exit.info 130
         ~doc:
           "interrupted by SIGINT: the case in flight finished, the flight \
            recording and partial results were flushed, and no \
            counterexample had been found (a counterexample still exits 3)."
    :: Cmd.Exit.info 143 ~doc:"terminated by SIGTERM; same drain as 130."
    :: Cmd.Exit.defaults
  in
  Cmd.v (Cmd.info "fuzz" ~doc ~exits)
    Term.(
      const run $ seed_flag $ count_flag $ size_flag $ fuel_flag $ out_flag
      $ verbose_flag $ heartbeat_flag $ flight_flag $ cover_flag
      $ cover_guided_flag $ absint_flag $ cover_out_flag $ corpus_out_flag
      $ fault_flag)

(* ------------------------------------------------------------------ *)
(* batch / serve — the fault-tolerant compile service                  *)
(* ------------------------------------------------------------------ *)

module Service = Fj_service.Service
module Shutdown = Fj_service.Shutdown
module Svc_budget = Fj_service.Budget
module Svc_cache = Fj_service.Cache

(* Shared service knobs (batch and serve take the same set). *)

let jobs_flag =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Supervised worker domains draining the request queue.")

let queue_flag =
  Arg.(
    value & opt int 256
    & info [ "queue" ] ~docv:"N"
        ~doc:
          "Admission queue capacity. A request beyond it is $(i,shed) — a \
           structured rejection, never an unbounded queue or a hang.")

let deadline_flag =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Per-attempt wall-clock deadline, enforced by a cooperative \
           watchdog on the optimizer's tick stream. Expiry is a transient \
           failure: retried with backoff, then degraded.")

let pass_fuel_flag =
  Arg.(
    value
    & opt (some int) None
    & info [ "pass-fuel" ] ~docv:"N"
        ~doc:
          "Per-pass tick budget (the Guard fuel limit); default as \
           $(b,fjc check).")

let attempts_flag =
  Arg.(
    value & opt int 2
    & info [ "attempts" ] ~docv:"N"
        ~doc:
          "Attempts per degradation rung (full pipeline, then baseline, \
           then parse+typecheck only) before stepping down.")

let backoff_flag =
  Arg.(
    value & opt float 25.0
    & info [ "backoff-ms" ] ~docv:"MS"
        ~doc:
          "Base of the jittered exponential backoff slept between retries \
           of a transient failure.")

let backoff_max_flag =
  Arg.(
    value & opt float 250.0
    & info [ "backoff-max-ms" ] ~docv:"MS" ~doc:"Backoff ceiling.")

let service_seed_flag =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Determinises the backoff jitter (and nothing else — outputs are \
           byte-identical at any seed).")

let cache_dir_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          "Content-addressed pass cache directory (created if missing). \
           Entries are integrity-checked on read: a corrupt entry is \
           quarantined and recomputed, never served.")

let isolate_flag =
  Arg.(
    value & flag
    & info [ "isolate" ]
        ~doc:
          "Fork one child process per attempt so a crashing compilation \
           cannot take the service down (implies $(b,--jobs 1)).")

(* Build a Service.config from the shared knobs. [datacons] in the
   pipeline template is irrelevant — the service overrides it per
   request from each source's own datacon environment. *)
let service_config jobs queue attempts backoff backoff_max seed deadline
    pass_fuel mode iters inline_threshold dup_threshold policy no_prelude
    cache_dir isolate =
  let base = Service.default_config () in
  let budget =
    {
      base.Service.budget with
      Svc_budget.wall_ms = deadline;
      fuel =
        (match pass_fuel with
        | Some _ as f -> f
        | None -> base.Service.budget.Svc_budget.fuel);
    }
  in
  let pipeline =
    Pipeline.default_config ~mode ~iterations:iters ~inline_threshold
      ~dup_threshold ~policy ()
  in
  let cache = Option.map (fun dir -> Svc_cache.create ~dir ()) cache_dir in
  {
    Service.jobs;
    queue_capacity = queue;
    attempts_per_rung = attempts;
    backoff_base_ms = backoff;
    backoff_max_ms = backoff_max;
    seed;
    budget;
    pipeline;
    no_prelude;
    cache;
    isolate;
  }

(* Expand FILE|DIR arguments and --manifest lines into (id, path)
   pairs. A directory contributes its *.fj / *.sexp entries in sorted
   order; a path that does not exist is kept — the service rejects it
   as a structured per-request failure rather than aborting the batch.
   Ids are sanitized paths, deduplicated deterministically. *)
let gather_sources inputs manifest =
  let manifest_lines =
    match manifest with
    | None -> Ok []
    | Some f -> (
        match read_file f with
        | exception Sys_error m -> Error m
        | s ->
            Ok
              (String.split_on_char '\n' s |> List.map String.trim
              |> List.filter (fun l -> l <> "" && l.[0] <> '#')))
  in
  match manifest_lines with
  | Error _ as e -> e
  | Ok lines ->
      let expand p =
        match Sys.is_directory p with
        | exception Sys_error _ -> [ p ]
        | false -> [ p ]
        | true ->
            Sys.readdir p |> Array.to_list |> List.sort String.compare
            |> List.filter (fun f ->
                   Filename.check_suffix f ".fj"
                   || Filename.check_suffix f ".sexp")
            |> List.map (Filename.concat p)
      in
      let paths = List.concat_map expand (inputs @ lines) in
      let seen = Hashtbl.create 16 in
      Ok
        (List.map
           (fun p ->
             let base = Service.sanitize_id p in
             let id =
               match Hashtbl.find_opt seen base with
               | None ->
                   Hashtbl.add seen base 1;
                   base
               | Some n ->
                   Hashtbl.replace seen base (n + 1);
                   Fmt.str "%s.%d" base n
             in
             (id, p))
           paths)

let service_exits =
  Cmd.Exit.info 1
    ~doc:
      "some request was rejected (permanent failure), exhausted every \
       retry/degradation rung, or was dropped by a shutdown drain."
  :: Cmd.Exit.info 3
       ~doc:
         "some request was shed at admission because the queue was full \
          (takes precedence over 1)."
  :: Cmd.Exit.info 130
       ~doc:
         "interrupted by SIGINT: in-flight requests finished, the rest \
          were dropped, and partial results were written."
  :: Cmd.Exit.info 143 ~doc:"terminated by SIGTERM; same drain as 130."
  :: Cmd.Exit.defaults

let batch_cmd =
  let doc =
    "Compile a batch of files through the fault-tolerant compile service: \
     supervised parallel workers, per-request deadlines, retry with \
     jittered backoff, graceful degradation, and an integrity-checked \
     pass cache."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Every admitted request ends in exactly one structured outcome: \
         $(b,compiled) (possibly on a degraded rung), $(b,rejected) (a \
         permanent input failure), $(b,exhausted) (every rung failed every \
         attempt), $(b,shed) (refused at admission), or $(b,dropped) (a \
         shutdown drain). Per-request artifacts ($(i,ID).sexp and \
         $(i,ID).meta.json) carry only deterministic fields — they are \
         byte-identical at any $(b,--jobs) level, cold or warm cache; \
         timings and cache statistics live in results.json.";
    ]
  in
  let inputs_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:
            "Source files, or directories scanned (sorted) for *.fj and \
             *.sexp.")
  in
  let manifest_flag =
    Arg.(
      value
      & opt (some file) None
      & info [ "manifest" ] ~docv:"FILE"
          ~doc:
            "Read request paths from $(docv), one per line ($(b,#) \
             comments and blank lines ignored), after the positional \
             arguments.")
  in
  let out_flag =
    Arg.(
      value & opt string "_batch"
      & info [ "out" ] ~docv:"DIR"
          ~doc:
            "Output directory: per-request $(i,ID).sexp and \
             $(i,ID).meta.json plus results.json (schema $(b,fj-batch/1)).")
  in
  let run inputs manifest out jobs queue attempts backoff backoff_max seed
      deadline pass_fuel mode iters inline_threshold dup_threshold policy
      no_prelude cache_dir isolate faults =
    arm_faults faults;
    Shutdown.install ();
    match gather_sources inputs manifest with
    | Error m ->
        Fmt.epr "fjc: batch: %s@." m;
        1
    | Ok [] ->
        Fmt.epr "fjc: batch: no sources (give FILEs, DIRs, or --manifest)@.";
        1
    | Ok sources ->
        let cfg =
          service_config jobs queue attempts backoff backoff_max seed
            deadline pass_fuel mode iters inline_threshold dup_threshold
            policy no_prelude cache_dir isolate
        in
        let b = Service.run_batch cfg sources in
        Service.write_batch cfg ~dir:out b;
        let n name =
          List.length
            (List.filter
               (fun (o : Service.outcome) ->
                 String.equal (Service.status_name o.Service.status) name)
               b.Service.b_outcomes)
        in
        let degraded =
          List.length
            (List.filter
               (fun (o : Service.outcome) ->
                 match o.Service.status with
                 | Service.Compiled a -> a.Service.a_rung <> Service.Full
                 | _ -> false)
               b.Service.b_outcomes)
        in
        Fmt.pr
          "batch: %d request(s) in %.0fms: %d compiled (%d degraded), %d \
           rejected, %d exhausted, %d shed, %d dropped; %d worker \
           respawn(s)@."
          (List.length b.Service.b_outcomes)
          b.Service.b_wall_ms (n "compiled") degraded (n "rejected")
          (n "exhausted") (n "shed") (n "dropped") b.Service.b_respawns;
        (match cfg.Service.cache with
        | None -> ()
        | Some c ->
            let s = Svc_cache.stats c in
            Fmt.pr
              "batch: cache: %d hit(s), %d miss(es), %d store(s), %d \
               quarantined (hit rate %.0f%%)@."
              s.Svc_cache.hits s.Svc_cache.misses s.Svc_cache.stores
              s.Svc_cache.quarantined
              (100.0 *. Svc_cache.hit_rate c));
        (match b.Service.b_shutdown with
        | None -> ()
        | Some _ -> Fmt.epr "fjc: batch: interrupted; partial results in %s@." out);
        Fmt.pr "fjc: wrote %s@." (Filename.concat out "results.json");
        Service.batch_exit_code b
  in
  Cmd.v
    (Cmd.info "batch" ~doc ~man ~exits:service_exits)
    Term.(
      const run $ inputs_arg $ manifest_flag $ out_flag $ jobs_flag
      $ queue_flag $ attempts_flag $ backoff_flag $ backoff_max_flag
      $ service_seed_flag $ deadline_flag $ pass_fuel_flag $ mode_flag
      $ iters_flag $ inline_threshold_flag $ dup_threshold_flag
      $ policy_flag $ no_prelude_flag $ cache_dir_flag $ isolate_flag
      $ fault_flag)

let serve_cmd =
  let doc =
    "Run the compile service on a newline-delimited request stream \
     (stdin/stdout, or a Unix-domain socket with $(b,--socket))."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Each request line is $(i,PATH) or $(i,ID), a tab, and $(i,PATH); \
         each \
         response line is one JSON object with at least $(b,id) and \
         $(b,status) ($(b,compiled) responses add $(b,rung), \
         $(b,output_size) and the output s-expression; failures add \
         $(b,error) and $(b,detail)). Responses may interleave across \
         requests at $(b,--jobs) > 1 — correlate on $(b,id). The server \
         returns on end of input or on SIGINT/SIGTERM, draining in-flight \
         requests either way.";
    ]
  in
  let socket_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket at $(docv) (one client at a \
             time) instead of stdin/stdout.")
  in
  let run socket jobs queue attempts backoff backoff_max seed deadline
      pass_fuel mode iters inline_threshold dup_threshold policy no_prelude
      cache_dir isolate faults =
    arm_faults faults;
    Shutdown.install ();
    let cfg =
      service_config jobs queue attempts backoff backoff_max seed deadline
        pass_fuel mode iters inline_threshold dup_threshold policy
        no_prelude cache_dir isolate
    in
    let reason =
      match socket with
      | None -> Service.serve cfg ~input:stdin ~output:stdout
      | Some path -> Service.serve_socket cfg ~path
    in
    match reason with None -> 0 | Some r -> Shutdown.exit_code r
  in
  Cmd.v
    (Cmd.info "serve" ~doc ~man ~exits:service_exits)
    Term.(
      const run $ socket_flag $ jobs_flag $ queue_flag $ attempts_flag
      $ backoff_flag $ backoff_max_flag $ service_seed_flag $ deadline_flag
      $ pass_fuel_flag $ mode_flag $ iters_flag $ inline_threshold_flag
      $ dup_threshold_flag $ policy_flag $ no_prelude_flag $ cache_dir_flag
      $ isolate_flag $ fault_flag)

(* ------------------------------------------------------------------ *)
(* bench                                                               *)
(* ------------------------------------------------------------------ *)

let bench_diff_cmd =
  let doc =
    "Compare two $(b,fj-bench/1) trajectory files (e.g. a committed \
     BENCH_*.json baseline against a fresh run)."
  in
  let run old_file new_file gate gate_timing md json_out =
    match (read_file old_file, read_file new_file) with
    | exception Sys_error m ->
        Fmt.epr "fjc: %s@." m;
        1
    | sold, snew -> (
        match
          Bench_diff.of_strings ?gate_pct:gate ~gate_timing
            ~old_label:old_file ~new_label:new_file sold snew
        with
        | Error m ->
            Fmt.epr "fjc: %s@." m;
            1
        | Ok d ->
            (* Same stdout discipline as [fjc cover --json -]: a
               machine-readable payload on stdout suppresses the
               console table. *)
            let to_stdout = md = Some "-" || json_out = Some "-" in
            if not to_stdout then Fmt.pr "%a@." Bench_diff.pp d;
            let rc_md =
              match md with
              | None -> 0
              | Some dest ->
                  write_output ~what:"bench diff (markdown)" dest
                    (Bench_diff.to_markdown d)
            in
            let rc_json =
              match json_out with
              | None -> 0
              | Some dest ->
                  write_output ~what:"bench diff (json)" dest
                    (Telemetry.Json.to_string (Bench_diff.to_json d))
            in
            (* The gate verdict wins over output-write failures, like
               the fuzz exit-code contract. *)
            match Bench_diff.regressions d with
            | [] -> max rc_md rc_json
            | rs ->
                Fmt.epr "fjc: bench diff gate failed: %d regression(s)@."
                  (List.length rs);
                3)
  in
  let old_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD" ~doc:"Baseline $(b,fj-bench/1) file.")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW" ~doc:"Candidate $(b,fj-bench/1) file.")
  in
  let gate_flag =
    Arg.(
      value
      & opt (some float) None
      & info [ "gate" ] ~docv:"PCT"
          ~doc:
            "Exit 3 on any regression beyond $(docv): counts (words, \
             steps, jumps) worsening by more than $(docv) percent, or the \
             Table-1 delta_pct worsening by more than $(docv) points. \
             Without this flag the diff only reports.")
  in
  let timing_gate_flag =
    Arg.(
      value & flag
      & info [ "timing-gate" ]
          ~doc:
            "Let $(b,--gate) also trip on eval timing medians worsening \
             beyond the recorded sample noise plus the gate percentage. \
             Off by default: wall-clock medians only compare between \
             runs on the same machine, so CI gates counts and delta_pct \
             only.")
  in
  let md_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "md" ] ~docv:"PATH"
          ~doc:
            "Write the diff as a markdown table (the CI artifact) to \
             $(docv); $(b,-) for stdout.")
  in
  let json_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:
            "Write the diff (schema $(b,fj-bench-diff/1)) to $(docv); \
             $(b,-) for stdout.")
  in
  let exits =
    Cmd.Exit.info 3
      ~doc:"the $(b,--gate) found at least one gated regression."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "diff" ~doc ~exits)
    Term.(
      const run $ old_arg $ new_arg $ gate_flag $ timing_gate_flag $ md_flag
      $ json_flag)

let bench_cmd =
  let doc = "Benchmark trajectory analytics." in
  Cmd.group (Cmd.info "bench" ~doc) [ bench_diff_cmd ]

(* ------------------------------------------------------------------ *)
(* main                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  let doc = "a compiler for System F_J — join points and jumps (PLDI'17)" in
  let info = Cmd.info "fjc" ~version:"1.0.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [ check_cmd; run_cmd; dump_cmd; trace_cmd; stats_cmd; profile_cmd;
            explain_cmd; erase_cmd; lower_cmd; cps_cmd; sexp_cmd; cover_cmd;
            fuzz_cmd; batch_cmd; serve_cmd; bench_cmd ]))
